"""Property tests: a multi-spec session equals k independent runs.

On random well-formed traces, driving all six order × clock combinations
through one :class:`repro.api.Session` walk must produce exactly the
timestamps and race sets of six legacy one-analysis-per-walk runs — and
the shared source must be consumed exactly once regardless of k.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import ANALYSIS_CLASSES
from repro.api import Session, TraceSource, parse_spec
from repro.clocks import clock_class_by_name
from util_traces import trace_strategy

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

ALL_SPECS = [
    f"{order}+{clock}+detect+ts"
    for order in ("hb", "shb", "maz")
    for clock in ("tc", "vc")
]


def race_set(result):
    return {
        (r.variable, r.prior_tid, r.prior_local_time, r.event_eid, r.event_tid)
        for r in result.detection.races
    }


@RELAXED
@given(trace=trace_strategy())
def test_multi_spec_session_equals_individual_runs(trace):
    source = TraceSource(trace)
    session_result = Session(ALL_SPECS).run(source)

    # One walk, not six.
    assert source.events_emitted == len(trace)

    for spec_text in ALL_SPECS:
        spec = parse_spec(spec_text)
        legacy = ANALYSIS_CLASSES[spec.order](
            clock_class_by_name(spec.clock), detect=True, capture_timestamps=True
        ).run(trace)
        via_session = session_result[spec]
        assert via_session.timestamps == legacy.timestamps, spec_text
        assert race_set(via_session) == race_set(legacy), spec_text
        assert via_session.detection.race_count == legacy.detection.race_count, spec_text


@RELAXED
@given(trace=trace_strategy(include_fork_join=True))
def test_session_race_counts_agree_across_clocks_with_fork_join(trace):
    result = Session(["shb+tc+detect", "shb+vc+detect"]).run(trace)
    counts = {key: r.detection.race_count for key, r in result}
    assert counts["shb+tc+detect"] == counts["shb+vc+detect"]

"""Property-based tests of the tree clock's structural invariants.

These check, on random traces processed by the three streaming
algorithms, that every tree clock in play maintains the invariants the
paper's correctness argument relies on:

* the internal structure is consistent (thread map ⟷ tree, sibling links,
  children sorted by descending attachment clock) — the preconditions of
  the pruning rules;
* direct and indirect monotonicity (Lemma 3) hold between every pair of
  clocks maintained by the algorithm;
* join computes the pointwise maximum (least upper bound) of the operand
  vector times.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.clocks import TreeClock
from repro.clocks.base import vt_join, vt_leq
from util_traces import trace_strategy

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _all_clocks(analysis):
    clocks = list(analysis.thread_clocks.values()) + list(analysis.lock_clocks.values())
    for attr in ("_last_write_clocks", "_last_read_clocks"):
        clocks.extend(getattr(analysis, attr, {}).values())
    return clocks


def _assert_lemma3(clock: TreeClock, other: TreeClock) -> None:
    """Direct and indirect monotonicity of `clock`'s tree w.r.t. `other`."""
    if clock.root is None:
        return
    stack = [clock.root]
    while stack:
        node = stack.pop()
        for child in node.children():
            stack.append(child)
            # Direct monotonicity: if the parent's entry is known to `other`,
            # so is every descendant's.
            if node.clk <= other.get(node.tid):
                assert child.clk <= other.get(child.tid)
            # Indirect monotonicity: if the child's attachment time is known
            # to `other` (as part of the parent thread), so are the entries of
            # the child's subtree.
            if child.aclk is not None and child.aclk <= other.get(node.tid):
                grandchildren = [child]
                while grandchildren:
                    descendant = grandchildren.pop()
                    assert descendant.clk <= other.get(descendant.tid)
                    grandchildren.extend(descendant.children())


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_structure_invariants_hold_after_hb(trace):
    analysis = HBAnalysis(TreeClock)
    analysis.run(trace)
    for clock in _all_clocks(analysis):
        assert clock.validate_structure() == []


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_structure_invariants_hold_after_shb_and_maz(trace):
    for analysis_class in (SHBAnalysis, MAZAnalysis):
        analysis = analysis_class(TreeClock)
        analysis.run(trace)
        for clock in _all_clocks(analysis):
            assert clock.validate_structure() == []


@RELAXED
@given(trace=trace_strategy(max_events=50))
def test_lemma3_monotonicity_between_all_clock_pairs(trace):
    analysis = HBAnalysis(TreeClock)
    analysis.run(trace)
    clocks = _all_clocks(analysis)
    for clock in clocks:
        for other in clocks:
            if clock is not other:
                _assert_lemma3(clock, other)


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_join_is_least_upper_bound(trace):
    """Joining the lock clock into a thread clock yields exactly the pointwise max."""
    analysis = HBAnalysis(TreeClock)
    analysis.run(trace)
    threads = list(analysis.thread_clocks)
    for lock, lock_clock in analysis.lock_clocks.items():
        for tid in threads:
            thread_clock = analysis.thread_clocks[tid]
            expected = vt_join(thread_clock.as_dict(), lock_clock.as_dict())
            # Perform the join on a fresh copy so the analysis state is unchanged.
            scratch = TreeClock(thread_clock.context, owner=None)
            scratch.copy_from(thread_clock)
            scratch.join(lock_clock)
            assert scratch.as_dict() == expected
            assert vt_leq(lock_clock.as_dict(), scratch.as_dict())
            assert scratch.validate_structure() == []


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_thread_clock_entries_never_exceed_actual_progress(trace):
    """No clock can know a thread beyond the number of events it executed."""
    analysis = HBAnalysis(TreeClock)
    analysis.run(trace)
    progress = {}
    for event in trace:
        progress[event.tid] = progress.get(event.tid, 0) + 1
    for clock in _all_clocks(analysis):
        for tid, value in clock.as_dict().items():
            assert value <= progress.get(tid, 0)

"""Property-based tests: the streaming analyses agree with the graph oracle.

The graph oracle (:class:`repro.analysis.GraphOrder`) is built directly
from the declarative definitions of the partial orders and shares no code
with the clock-based streaming algorithms, so agreement on random traces
is strong evidence that the clock algorithms (and hence the tree clock
operations they exercise) are correct.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import GraphOrder, HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.clocks import TreeClock
from util_traces import trace_strategy

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_hb_timestamps_match_graph_oracle(trace):
    result = HBAnalysis(TreeClock, capture_timestamps=True).run(trace)
    assert result.timestamps == GraphOrder(trace, "HB").timestamps()


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_shb_timestamps_match_graph_oracle(trace):
    result = SHBAnalysis(TreeClock, capture_timestamps=True).run(trace)
    assert result.timestamps == GraphOrder(trace, "SHB").timestamps()


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_maz_timestamps_match_graph_oracle(trace):
    result = MAZAnalysis(TreeClock, capture_timestamps=True).run(trace)
    assert result.timestamps == GraphOrder(trace, "MAZ").timestamps()


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_streaming_detector_agrees_with_oracle_on_race_existence(trace):
    """The epoch-optimized detector reports a race iff the trace has one."""
    detected = HBAnalysis(TreeClock, detect=True).run(trace).detection.race_count > 0
    oracle_has_race = bool(GraphOrder(trace, "HB").racy_pairs())
    assert detected == oracle_has_race


@RELAXED
@given(trace=trace_strategy(max_events=60))
def test_hb_timestamp_ordering_characterizes_oracle_order(trace):
    """Lemma 1: pointwise timestamp comparison coincides with the partial order."""
    result = HBAnalysis(TreeClock, capture_timestamps=True).run(trace)
    oracle = GraphOrder(trace, "HB")
    events = list(trace)
    # Compare a bounded number of pairs to keep the test fast.
    for first in events[:: max(1, len(events) // 8)]:
        for second in events[:: max(1, len(events) // 8)]:
            if first.eid >= second.eid:
                continue
            first_time = result.timestamps[first.eid]
            second_time = result.timestamps[second.eid]
            dominated = all(
                value <= second_time.get(tid, 0) for tid, value in first_time.items()
            )
            assert dominated == oracle.ordered(first, second)

"""Property-based tests for trace serialization and trace invariants."""

from hypothesis import HealthCheck, given, settings

from repro.trace import dumps_csv, dumps_std, is_well_formed, loads_csv, loads_std
from util_traces import trace_strategy

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@RELAXED
@given(trace=trace_strategy(include_fork_join=True))
def test_std_roundtrip(trace):
    assert loads_std(dumps_std(trace)) == trace


@RELAXED
@given(trace=trace_strategy(include_fork_join=True))
def test_csv_roundtrip(trace):
    assert loads_csv(dumps_csv(trace)) == trace


@RELAXED
@given(trace=trace_strategy(include_fork_join=True))
def test_generated_traces_are_well_formed(trace):
    assert is_well_formed(trace)


@RELAXED
@given(trace=trace_strategy())
def test_local_times_are_dense_per_thread(trace):
    last_seen = {}
    for event in trace:
        local = trace.local_time(event)
        assert local == last_seen.get(event.tid, 0) + 1
        last_seen[event.tid] = local

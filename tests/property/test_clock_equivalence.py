"""Property-based tests: tree clocks and vector clocks are interchangeable.

The central correctness claim of the paper is that the tree clock is a
drop-in replacement for the vector clock: running the same streaming
algorithm with either data structure produces identical vector timestamps
for every event (Lemma 4 for HB; Section 5 for SHB and MAZ).  These tests
exercise that claim on randomly generated well-formed traces.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.clocks import TreeClock, VectorClock
from util_traces import trace_strategy

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@RELAXED
@given(trace=trace_strategy())
def test_hb_timestamps_identical_for_both_clocks(trace):
    tc = HBAnalysis(TreeClock, capture_timestamps=True).run(trace)
    vc = HBAnalysis(VectorClock, capture_timestamps=True).run(trace)
    assert tc.timestamps == vc.timestamps


@RELAXED
@given(trace=trace_strategy())
def test_shb_timestamps_identical_for_both_clocks(trace):
    tc = SHBAnalysis(TreeClock, capture_timestamps=True).run(trace)
    vc = SHBAnalysis(VectorClock, capture_timestamps=True).run(trace)
    assert tc.timestamps == vc.timestamps


@RELAXED
@given(trace=trace_strategy())
def test_maz_timestamps_identical_for_both_clocks(trace):
    tc = MAZAnalysis(TreeClock, capture_timestamps=True).run(trace)
    vc = MAZAnalysis(VectorClock, capture_timestamps=True).run(trace)
    assert tc.timestamps == vc.timestamps


@RELAXED
@given(trace=trace_strategy(include_fork_join=True))
def test_hb_with_fork_join_is_clock_independent(trace):
    tc = HBAnalysis(TreeClock, capture_timestamps=True).run(trace)
    vc = HBAnalysis(VectorClock, capture_timestamps=True).run(trace)
    assert tc.timestamps == vc.timestamps


@RELAXED
@given(trace=trace_strategy())
def test_race_detection_counts_are_clock_independent(trace):
    tc = HBAnalysis(TreeClock, detect=True).run(trace)
    vc = HBAnalysis(VectorClock, detect=True).run(trace)
    assert tc.detection.race_count == vc.detection.race_count


@RELAXED
@given(trace=trace_strategy())
def test_entry_update_counts_are_clock_independent(trace):
    """Both data structures perform exactly VTWork(σ) entry updates."""
    tc = HBAnalysis(TreeClock, count_work=True).run(trace)
    vc = HBAnalysis(VectorClock, count_work=True).run(trace)
    assert tc.work.entries_updated == vc.work.entries_updated

"""Test helpers: random well-formed trace generation and hypothesis strategies."""

from __future__ import annotations

import random
from typing import Dict, List

from hypothesis import strategies as st

from repro.trace import Trace
from repro.trace import event as ev


def make_random_trace(
    seed: int,
    num_threads: int = 6,
    num_locks: int = 3,
    num_variables: int = 4,
    num_events: int = 200,
    sync_bias: float = 0.45,
    include_fork_join: bool = False,
) -> Trace:
    """Generate a small random trace that respects lock semantics.

    Threads acquire only free locks and only release locks they hold, so
    the result always validates.  Optionally the first thread forks the
    others at the start and joins them at the end.
    """
    rng = random.Random(seed)
    threads = list(range(1, num_threads + 1))
    events = []
    held: Dict[int, List[object]] = {tid: [] for tid in threads}

    if include_fork_join:
        for tid in threads[1:]:
            events.append(ev.fork(threads[0], tid))

    for _ in range(num_events):
        tid = rng.choice(threads)
        roll = rng.random()
        if roll < sync_bias / 2 and held[tid]:
            lock = rng.choice(held[tid])
            held[tid].remove(lock)
            events.append(ev.release(tid, lock))
        elif roll < sync_bias:
            in_use = {lock for locks in held.values() for lock in locks}
            free = [f"l{index}" for index in range(num_locks) if f"l{index}" not in in_use]
            if free:
                lock = rng.choice(free)
                held[tid].append(lock)
                events.append(ev.acquire(tid, lock))
        elif roll < sync_bias + (1.0 - sync_bias) * 0.6:
            events.append(ev.read(tid, f"x{rng.randrange(num_variables)}"))
        else:
            events.append(ev.write(tid, f"x{rng.randrange(num_variables)}"))

    for tid, locks in held.items():
        for lock in list(locks):
            events.append(ev.release(tid, lock))

    if include_fork_join:
        for tid in threads[1:]:
            events.append(ev.join(threads[0], tid))

    return Trace(events, name=f"random-{seed}")


@st.composite
def trace_strategy(
    draw,
    max_threads: int = 5,
    max_locks: int = 3,
    max_variables: int = 3,
    max_events: int = 80,
    include_fork_join: bool = False,
) -> Trace:
    """Hypothesis strategy producing small well-formed traces."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    num_threads = draw(st.integers(min_value=2, max_value=max_threads))
    num_locks = draw(st.integers(min_value=1, max_value=max_locks))
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    num_events = draw(st.integers(min_value=1, max_value=max_events))
    sync_bias = draw(st.floats(min_value=0.0, max_value=0.9))
    fork_join = include_fork_join and draw(st.booleans())
    return make_random_trace(
        seed,
        num_threads=num_threads,
        num_locks=num_locks,
        num_variables=num_variables,
        num_events=num_events,
        sync_bias=sync_bias,
        include_fork_join=fork_join,
    )

"""Shared fixtures for the test suite.

Trace-generation helpers live in :mod:`util_traces` (importable because
``tests/`` is on the pytest ``pythonpath``).
"""

from __future__ import annotations

import pytest

from repro.clocks import ClockContext
from repro.trace import Trace, TraceBuilder


@pytest.fixture
def context() -> ClockContext:
    """A clock context over five threads (1..5)."""
    return ClockContext(threads=[1, 2, 3, 4, 5])


@pytest.fixture
def figure2a_trace() -> Trace:
    """The trace of Figure 2a (direct monotonicity example)."""
    builder = TraceBuilder(name="figure2a")
    builder.sync(1, "l1")     # e1 (acq+rel)
    builder.sync(2, "l1")     # e2
    builder.sync(3, "l1")     # e3
    builder.sync(2, "l2")     # e4
    builder.sync(4, "l2")     # e5
    builder.sync(3, "l3")     # e6
    builder.sync(4, "l3")     # e7
    return builder.build()


@pytest.fixture
def figure11_trace() -> Trace:
    """The trace σ of Figure 11a (Appendix B worked example)."""
    builder = TraceBuilder(name="figure11")
    builder.acquire(1, "l1").release(1, "l1")          # e1, e2
    builder.acquire(4, "l2").release(4, "l2")          # e3, e4
    builder.acquire(5, "l3").release(5, "l3")          # e5, e6
    builder.acquire(3, "l1")                            # e7
    builder.acquire(3, "l3").release(3, "l3")          # e8, e9
    builder.release(3, "l1")                            # e10
    builder.acquire(4, "l3").release(4, "l3")          # e11, e12
    builder.acquire(2, "l1").release(2, "l1")          # e13, e14
    builder.acquire(2, "l2").release(2, "l2")          # e15, e16
    return builder.build()


@pytest.fixture
def racy_trace() -> Trace:
    """A minimal trace with an obvious HB race on ``x``."""
    return (
        TraceBuilder(name="racy")
        .write(1, "x")
        .sync(1, "l")
        .sync(2, "m")
        .write(2, "x")
        .build()
    )


@pytest.fixture
def race_free_trace() -> Trace:
    """A minimal trace where all conflicting accesses are lock-protected."""
    builder = TraceBuilder(name="race-free")
    builder.acquire(1, "l").write(1, "x").release(1, "l")
    builder.acquire(2, "l").write(2, "x").release(2, "l")
    return builder.build()

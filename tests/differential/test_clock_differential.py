"""Differential fuzzing: optimized TreeClock ≡ VectorClock ≡ dict model.

The tree-clock hot path is aggressively optimized (fused detach/attach,
node free-list recycling, reused traversal scratch lists, in-place deep
copies).  None of that may ever be observable: after *every* mutation a
tree clock must represent exactly the vector time the plain vector clock
and the reference dictionary model compute, and its structural
invariants (:meth:`TreeClock.validate_structure`) must hold.  Checking
after every single mutation — not just at the end — is what catches
free-list reuse bugs: a recycled node with a stale link corrupts the
tree long before it changes the final vector time.

Two granularities:

* **op-level** — hypothesis generates raw clock-operation sequences
  (increment / join / monotone-copy / copy-check-monotone over thread
  and auxiliary clocks) and replays them against TreeClock, VectorClock
  and a plain-dict model simultaneously;
* **trace-level** — random well-formed traces run through the real
  HB/SHB/MAZ analyses with both clock classes, comparing per-event
  timestamps, race streams and the data-structure-independent ``VTWork``
  counter.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.clocks import ClockContext, TreeClock, VectorClock
from repro.clocks.base import VectorTime, vt_join, vt_leq
from util_traces import make_random_trace

NUM_THREADS = 4
NUM_AUX = 3


def _new_universe():
    """Fresh TC / VC / model universes over the same threads and aux slots."""
    threads = list(range(1, NUM_THREADS + 1))
    tc_context = ClockContext(threads=list(threads))
    vc_context = ClockContext(threads=list(threads))
    tc = {tid: TreeClock(tc_context, owner=tid) for tid in threads}
    vc = {tid: VectorClock(vc_context, owner=tid) for tid in threads}
    model: Dict[int, VectorTime] = {tid: {} for tid in threads}
    for aux in range(NUM_AUX):
        key = f"aux{aux}"
        tc[key] = TreeClock(tc_context, owner=None)
        vc[key] = VectorClock(vc_context, owner=None)
        model[key] = {}
    return threads, tc, vc, model


#: One op: (opcode, actor, target).  Opcodes: "inc" (thread increments),
#: "join_aux" (thread joins aux), "join_thread" (thread joins thread),
#: "copy_aux" (aux <- thread; monotone when the model says it is, checked
#: otherwise), "copy_check" (aux <- thread via copy_check_monotone).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["inc", "inc", "inc", "join_aux", "join_thread", "copy_aux", "copy_check"]),
        st.integers(min_value=1, max_value=NUM_THREADS),
        st.integers(min_value=0, max_value=max(NUM_AUX - 1, NUM_THREADS)),
    ),
    min_size=1,
    max_size=120,
)


def _assert_agree(key, tc, vc, model) -> None:
    tc_dict = tc[key].as_dict()
    vc_dict = vc[key].as_dict()
    expected = {tid: value for tid, value in model[key].items() if value}
    assert tc_dict == expected, f"TreeClock diverged from model on {key}"
    assert vc_dict == expected, f"VectorClock diverged from model on {key}"
    problems = tc[key].validate_structure()
    assert problems == [], f"TreeClock invariants violated on {key}: {problems}"


@settings(max_examples=40, deadline=None)
@given(ops=_OPS)
def test_op_sequences_tc_equals_vc_equals_model(ops: List[Tuple[str, int, int]]) -> None:
    """Replay raw op sequences against TC, VC and the dict model in lockstep."""
    threads, tc, vc, model = _new_universe()

    def bump(tid: int) -> None:
        tc[tid].increment(tid)
        vc[tid].increment(tid)
        model[tid][tid] = model[tid].get(tid, 0) + 1

    for opcode, actor, target in ops:
        if opcode in ("join_aux", "join_thread"):
            # Mirror the engine's feed() discipline: a thread clock is
            # incremented before every event's joins, which maintains the
            # snapshot property TreeClock.join's O(1) root check relies
            # on (a clock's root progresses whenever its contents do).
            bump(actor)
        if opcode == "inc":
            bump(actor)
            touched = [actor]
        elif opcode == "join_aux":
            aux = f"aux{target % NUM_AUX}"
            tc[actor].join(tc[aux])
            vc[actor].join(vc[aux])
            model[actor] = vt_join(model[actor], model[aux])
            touched = [actor]
        elif opcode == "join_thread":
            other = threads[target % NUM_THREADS]
            if other != actor:
                tc[actor].join(tc[other])
                vc[actor].join(vc[other])
                model[actor] = vt_join(model[actor], model[other])
            touched = [actor]
        elif opcode == "copy_aux":
            aux = f"aux{target % NUM_AUX}"
            if vt_leq(model[aux], model[actor]):
                # The release pattern: the precondition aux ⊑ C_t holds,
                # so the sublinear monotone copy is legal.
                tc[aux].monotone_copy(tc[actor])
                vc[aux].monotone_copy(vc[actor])
            else:
                tc[aux].copy_check_monotone(tc[actor])
                vc[aux].copy_check_monotone(vc[actor])
            model[aux] = dict(model[actor])
            touched = [aux]
        else:  # copy_check
            aux = f"aux{target % NUM_AUX}"
            tc[aux].copy_check_monotone(tc[actor])
            vc[aux].copy_check_monotone(vc[actor])
            model[aux] = dict(model[actor])
            touched = [aux]
        for key in touched:
            _assert_agree(key, tc, vc, model)
    for key in list(model):
        _assert_agree(key, tc, vc, model)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    fork_join=st.booleans(),
)
@pytest.mark.parametrize("analysis_class", [HBAnalysis, SHBAnalysis, MAZAnalysis])
def test_analyses_tc_equals_vc_event_for_event(analysis_class, seed: int, fork_join: bool) -> None:
    """Full analyses: per-event timestamps, race streams and VTWork agree."""
    trace = make_random_trace(seed, num_events=120, include_fork_join=fork_join)
    results = {}
    for clock_class in (TreeClock, VectorClock):
        analysis = analysis_class(
            clock_class, capture_timestamps=True, count_work=True, detect=True
        )
        results[clock_class] = analysis.run(trace)
    tc_result = results[TreeClock]
    vc_result = results[VectorClock]
    assert tc_result.timestamps == vc_result.timestamps
    tc_races = [(r.variable, r.prior_tid, r.prior_local_time, r.event_eid) for r in tc_result.detection.races]
    vc_races = [(r.variable, r.prior_tid, r.prior_local_time, r.event_eid) for r in vc_result.detection.races]
    assert tc_races == vc_races
    assert tc_result.detection.checks == vc_result.detection.checks
    # VTWork (entries actually changed) is data-structure independent
    # (Section 4 of the paper); TCWork/VCWork legitimately differ.
    assert tc_result.work.entries_updated == vc_result.work.entries_updated


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_incremental_feed_validates_after_every_event(seed: int) -> None:
    """Feed event-by-event; the fed thread's TC must match VC and validate."""
    trace = make_random_trace(seed, num_events=100)
    tc_analysis = SHBAnalysis(TreeClock)
    vc_analysis = SHBAnalysis(VectorClock)
    tc_analysis.begin(threads=trace.threads, trace_name=trace.name)
    vc_analysis.begin(threads=trace.threads, trace_name=trace.name)
    for position, event in enumerate(trace):
        tc_analysis.feed(event)
        vc_analysis.feed(event)
        tc_clock = tc_analysis.thread_clocks[event.tid]
        vc_clock = vc_analysis.thread_clocks[event.tid]
        assert tc_clock.as_dict() == vc_clock.as_dict(), f"divergence at event {position}"
        problems = tc_clock.validate_structure()
        assert problems == [], f"invariant violation at event {position}: {problems}"
        if position % 16 == 0:
            for tid, clock in tc_analysis.thread_clocks.items():
                assert clock.validate_structure() == [], f"thread t{tid} corrupt at event {position}"
            for lock, clock in tc_analysis.lock_clocks.items():
                assert clock.validate_structure() == [], f"lock {lock} corrupt at event {position}"
    tc_analysis.finish()
    vc_analysis.finish()

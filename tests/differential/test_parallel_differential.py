"""Differential check: segment-parallel analysis ≡ the sequential walk.

The segment-parallel runner (:mod:`repro.analysis.parallel`) is only
allowed to change *where the work runs*, never what it computes: for
every spec the merged race list (same races, same order), the detector
check counts, the per-event timestamps and the event totals must be
identical to the ordinary sequential walk over the same colf container.
This module pins that contract across the full order × clock matrix,
every generator scenario, fork/join traces and hypothesis-random
traces, at several worker counts and segment sizes — a boundary-merge
bug that shifts one clock entry or reorders one race fails here.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.api.sources import ColfSource
from repro.gen.scenarios import SCENARIOS
from repro.trace.colfmt import write_colf
from util_traces import make_random_trace, trace_strategy

#: The full order × clock sweep, detection on everywhere, timestamps on
#: the vector-clock side so boundary clock values are compared exactly.
MATRIX_SPECS = [
    "hb+tc+detect",
    "hb+vc+detect+ts",
    "shb+tc+detect",
    "shb+vc+detect+ts",
    "maz+tc+detect",
    "maz+vc+detect+ts",
]

#: Shorter slice for the many-trace sweeps.
SESSION_SPECS = ["hb+tc+detect", "shb+vc+detect", "maz+tc+detect"]


def write_container(events, tmp_path, segment_events=128):
    path = tmp_path / "trace.colf"
    with open(path, "wb") as handle:
        write_colf(events, handle, segment_events=segment_events)
    return path


def run_both(events, tmp_path, specs, *, parallel=4, segment_events=128):
    path = write_container(events, tmp_path, segment_events=segment_events)
    with ColfSource(path) as source:
        sequential = Session(specs).run(source)
    with ColfSource(path) as source:
        parallel_result = Session(specs).run(source, parallel=parallel)
    return sequential, parallel_result


def assert_equivalent(sequential, parallel_result, *, expect_parallel=True):
    if expect_parallel:
        assert parallel_result.parallel is not None, "parallel walk did not engage"
    assert parallel_result.num_events == sequential.num_events
    assert set(parallel_result.results) == set(sequential.results)
    for key in sequential.results:
        seq_result = sequential[key]
        par_result = parallel_result[key]
        assert par_result.num_events == seq_result.num_events, key
        if seq_result.detection is not None:
            seq_races = [race.pair() for race in seq_result.detection.races]
            par_races = [race.pair() for race in par_result.detection.races]
            assert par_races == seq_races, f"{key}: race sets diverge"
            assert par_result.detection.checks == seq_result.detection.checks, key
            assert (
                par_result.detection.total_reported
                == seq_result.detection.total_reported
            ), key
        if seq_result.timestamps is not None:
            assert par_result.timestamps == seq_result.timestamps, (
                f"{key}: timestamps diverge"
            )


class TestMatrixEquivalence:
    def test_full_order_clock_matrix(self, tmp_path):
        events = list(make_random_trace(11, num_events=1500, include_fork_join=True))
        sequential, parallel_result = run_both(events, tmp_path, MATRIX_SPECS)
        assert_equivalent(sequential, parallel_result)

    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_worker_counts(self, tmp_path, workers):
        events = list(make_random_trace(5, num_events=900))
        sequential, parallel_result = run_both(
            events, tmp_path, MATRIX_SPECS, parallel=workers
        )
        assert_equivalent(sequential, parallel_result)
        assert parallel_result.parallel.chunks <= workers

    @pytest.mark.parametrize("segment_events", [16, 64, 257])
    def test_segment_sizes(self, tmp_path, segment_events):
        events = list(make_random_trace(23, num_events=800, include_fork_join=True))
        sequential, parallel_result = run_both(
            events, tmp_path, MATRIX_SPECS, segment_events=segment_events
        )
        assert_equivalent(sequential, parallel_result)


class TestScenarioEquivalence:
    def test_all_generator_scenarios(self, tmp_path):
        for name, factory in sorted(SCENARIOS.items()):
            events = list(factory(8, 1200, 3))
            sequential, parallel_result = run_both(events, tmp_path, SESSION_SPECS)
            assert_equivalent(sequential, parallel_result)

    def test_fork_join_heavy(self, tmp_path):
        events = list(
            make_random_trace(41, num_threads=10, num_events=1000, include_fork_join=True)
        )
        sequential, parallel_result = run_both(events, tmp_path, MATRIX_SPECS)
        assert_equivalent(sequential, parallel_result)

    def test_sync_free_trace(self, tmp_path):
        events = list(make_random_trace(13, num_events=600, sync_bias=0.0))
        sequential, parallel_result = run_both(events, tmp_path, MATRIX_SPECS)
        assert_equivalent(sequential, parallel_result)

    def test_sync_heavy_trace(self, tmp_path):
        events = list(make_random_trace(17, num_events=600, sync_bias=0.9))
        sequential, parallel_result = run_both(events, tmp_path, MATRIX_SPECS)
        assert_equivalent(sequential, parallel_result)


class TestCallbackEquivalence:
    def test_on_race_sees_merged_order(self, tmp_path):
        events = list(make_random_trace(3, num_events=700, sync_bias=0.2))
        path = write_container(events, tmp_path)
        sequential_races, parallel_races = [], []
        with ColfSource(path) as source:
            Session(SESSION_SPECS, on_race=sequential_races.append).run(source)
        with ColfSource(path) as source:
            result = Session(SESSION_SPECS, on_race=parallel_races.append).run(
                source, parallel=4
            )
        assert result.parallel is not None
        assert [race.pair() for race in parallel_races] == [
            race.pair() for race in sequential_races
        ]

    def test_countonly_narrator(self, tmp_path):
        """keep_races=False + on_race: callbacks fire, races stay trimmed."""
        events = list(make_random_trace(9, num_events=500, sync_bias=0.2))
        path = write_container(events, tmp_path)
        seen = []
        with ColfSource(path) as source:
            result = Session(
                ["hb+tc+detect+countonly"], on_race=seen.append
            ).run(source, parallel=3)
        assert result.parallel is not None
        summary = result.primary.detection
        assert summary.races == []
        assert summary.total_reported == len(seen)
        assert len(seen) > 0


class TestHypothesisEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(trace=trace_strategy(max_events=120, include_fork_join=True), data=st.data())
    def test_random_traces(self, tmp_path_factory, trace, data):
        events = list(trace)
        if not events:
            return
        workers = data.draw(st.integers(min_value=2, max_value=6))
        segment_events = data.draw(st.sampled_from([8, 16, 32]))
        tmp_path = tmp_path_factory.mktemp("parallel-hyp")
        sequential, parallel_result = run_both(
            events,
            tmp_path,
            SESSION_SPECS,
            parallel=workers,
            segment_events=segment_events,
        )
        assert_equivalent(
            sequential,
            parallel_result,
            expect_parallel=len(events) > segment_events,
        )

"""Differential check: the epoch-fast-path detector ≡ the reference detector.

The optimized :class:`repro.analysis.detectors.RaceDetector` keeps the
reads-since-last-write as a single flat epoch until a second concurrent
reading thread appears.  This must be *exact*: the same races, in the
same order, with the same check counts as the straightforward
per-thread read map.  To pin that down, this module re-implements the
pre-optimization detector verbatim (epoch object for the last write,
always-materialized read dictionary) and drives both detectors with the
same clock stream, comparing their full observable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import HBAnalysis
from repro.analysis.detectors import RaceDetector
from repro.clocks import TreeClock, VectorClock
from util_traces import make_random_trace


@dataclass
class _ReferenceState:
    last_write: Optional[Tuple[int, int]] = None  # (tid, clk)
    reads: Dict[int, int] = field(default_factory=dict)


class ReferenceRaceDetector:
    """The seed implementation of the HB/SHB race detector, kept verbatim.

    Records races as ``(variable, prior_tid, prior_clk, event_eid)``
    tuples and counts checks exactly like the original code did.
    """

    def __init__(self) -> None:
        self.races: List[Tuple[object, int, int, int]] = []
        self.checks = 0
        self._states: Dict[object, _ReferenceState] = {}

    def _state(self, variable: object) -> _ReferenceState:
        state = self._states.get(variable)
        if state is None:
            state = _ReferenceState()
            self._states[variable] = state
        return state

    def on_read(self, event, clock) -> None:
        state = self._state(event.variable)
        last_write = state.last_write
        self.checks += 1
        if (
            last_write is not None
            and last_write[0] != event.tid
            and last_write[1] > clock.get(last_write[0])
        ):
            self.races.append((event.variable, last_write[0], last_write[1], event.eid))
        state.reads[event.tid] = clock.get(event.tid)

    def on_write(self, event, clock) -> None:
        state = self._state(event.variable)
        last_write = state.last_write
        self.checks += 1
        if (
            last_write is not None
            and last_write[0] != event.tid
            and last_write[1] > clock.get(last_write[0])
        ):
            self.races.append((event.variable, last_write[0], last_write[1], event.eid))
        for reader_tid, reader_clk in state.reads.items():
            if reader_tid == event.tid:
                continue
            self.checks += 1
            if reader_clk > clock.get(reader_tid):
                self.races.append((event.variable, reader_tid, reader_clk, event.eid))
        state.reads.clear()
        state.last_write = (event.tid, clock.get(event.tid))


class _SnapshotClock:
    """A read-only clock over a recorded vector-time snapshot."""

    def __init__(self, snapshot: Dict[int, int]) -> None:
        self._snapshot = snapshot

    def get(self, tid: int) -> int:
        return self._snapshot.get(tid, 0)


def _drive_detectors(trace) -> Tuple[RaceDetector, ReferenceRaceDetector]:
    """Run HB once for timestamps, then feed both detectors identically."""
    timestamps = HBAnalysis(TreeClock, capture_timestamps=True).run(trace).timestamps
    optimized = RaceDetector()
    reference = ReferenceRaceDetector()
    for event in trace:
        if not event.is_access:
            continue
        clock = _SnapshotClock(timestamps[event.eid])
        if event.is_read:
            optimized.on_read(event, clock)
            reference.on_read(event, clock)
        else:
            optimized.on_write(event, clock)
            reference.on_write(event, clock)
    return optimized, reference


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    sync_bias=st.sampled_from([0.1, 0.45, 0.8]),
)
def test_epoch_fast_path_matches_reference_detector(seed: int, sync_bias: float) -> None:
    """Same races, same order, same check counts as the seed detector."""
    trace = make_random_trace(seed, num_events=150, sync_bias=sync_bias, num_variables=3)
    optimized, reference = _drive_detectors(trace)
    optimized_races = [
        (race.variable, race.prior_tid, race.prior_local_time, race.event_eid)
        for race in optimized.summary.races
    ]
    assert optimized_races == reference.races
    assert optimized.summary.checks == reference.checks
    assert optimized.summary.total_reported == len(reference.races)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_detection_identical_across_clock_classes(seed: int) -> None:
    """The full analysis pipeline reports identical races for TC and VC."""
    trace = make_random_trace(seed, num_events=150, num_variables=2)
    summaries = {}
    for clock_class in (TreeClock, VectorClock):
        result = HBAnalysis(clock_class, detect=True).run(trace)
        summaries[clock_class] = result.detection
    tc, vc = summaries[TreeClock], summaries[VectorClock]
    assert [(r.variable, r.prior_tid, r.prior_local_time, r.event_eid) for r in tc.races] == [
        (r.variable, r.prior_tid, r.prior_local_time, r.event_eid) for r in vc.races
    ]
    assert tc.checks == vc.checks

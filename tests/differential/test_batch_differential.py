"""Differential check: ``feed_batch`` ≡ per-event ``feed``, exactly.

The batched pipeline is only allowed to change *cost*, never results:
feeding a trace in any batch partition — one huge batch, ragged odd
sizes, one event at a time — must produce bit-identical output (the
batch-transparency invariant).  This module drives the full order×clock
spec matrix both ways over random well-formed traces and compares every
observable: per-event vector timestamps, race records in order, check
counts, work counters, event/thread counts.  A new per-event rule that
peeks across batch boundaries (or caches per-feed state) fails here.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.api import Session
from repro.clocks import TreeClock, VectorClock
from repro.trace import Trace
from util_traces import make_random_trace

ALL_ANALYSES = [HBAnalysis, SHBAnalysis, MAZAnalysis]
ALL_CLOCKS = [TreeClock, VectorClock]

#: Every spec combination of the evaluation matrix, as session spec keys.
SPEC_MATRIX = [
    f"{order}+{clock}{detect}"
    for order in ("hb", "shb", "maz")
    for clock in ("tc", "vc")
    for detect in ("", "+detect")
]


def _partition(events, sizes):
    """Split ``events`` into batches cycling through ``sizes``."""
    batches = []
    index = 0
    cursor = 0
    while cursor < len(events):
        size = sizes[index % len(sizes)]
        batches.append(list(events[cursor : cursor + size]))
        cursor += size
        index += 1
    return batches


def _run_per_event(analysis_class, clock_class, trace):
    analysis = analysis_class(clock_class, capture_timestamps=True, detect=True)
    analysis.begin(threads=trace.threads, trace_name=trace.name)
    for event in trace:
        analysis.feed(event)
    return analysis.finish()


def _run_batched(analysis_class, clock_class, trace, sizes):
    analysis = analysis_class(clock_class, capture_timestamps=True, detect=True)
    analysis.begin(threads=trace.threads, trace_name=trace.name)
    for batch in _partition(list(trace), sizes):
        analysis.feed_batch(batch)
    return analysis.finish()


def _assert_results_match(batched, reference):
    assert batched.timestamps == reference.timestamps
    assert batched.num_events == reference.num_events
    assert batched.num_threads == reference.num_threads
    assert batched.detection.checks == reference.detection.checks
    assert batched.detection.race_count == reference.detection.race_count
    assert [race.pair() for race in batched.detection.races] == [
        race.pair() for race in reference.detection.races
    ]


class TestEngineBatchTransparency:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4),
    )
    def test_every_analysis_matches_across_ragged_partitions(self, seed, sizes):
        trace = make_random_trace(seed, num_events=150, include_fork_join=bool(seed % 2))
        for analysis_class in ALL_ANALYSES:
            for clock_class in ALL_CLOCKS:
                reference = _run_per_event(analysis_class, clock_class, trace)
                batched = _run_batched(analysis_class, clock_class, trace, sizes)
                _assert_results_match(batched, reference)

    def test_single_batch_and_singletons_agree(self):
        trace = make_random_trace(7, num_events=120)
        for analysis_class in ALL_ANALYSES:
            for clock_class in ALL_CLOCKS:
                reference = _run_per_event(analysis_class, clock_class, trace)
                whole = _run_batched(analysis_class, clock_class, trace, [len(trace)])
                singles = _run_batched(analysis_class, clock_class, trace, [1])
                _assert_results_match(whole, reference)
                _assert_results_match(singles, reference)

    def test_work_counters_match(self):
        trace = make_random_trace(11, num_events=150)
        for analysis_class in ALL_ANALYSES:
            for clock_class in ALL_CLOCKS:
                reference = analysis_class(clock_class, count_work=True)
                reference.begin(threads=trace.threads)
                for event in trace:
                    reference.feed(event)
                per_event = reference.finish()

                batched = analysis_class(clock_class, count_work=True)
                batched.begin(threads=trace.threads)
                for batch in _partition(list(trace), [13]):
                    batched.feed_batch(batch)
                result = batched.finish()

                assert result.work.entries_processed == per_event.work.entries_processed
                assert result.work.entries_updated == per_event.work.entries_updated
                assert result.work.joins == per_event.work.joins
                assert result.work.copies == per_event.work.copies

    def test_empty_batches_are_no_ops(self):
        trace = make_random_trace(3, num_events=60)
        for analysis_class in ALL_ANALYSES:
            reference = _run_per_event(analysis_class, TreeClock, trace)
            analysis = analysis_class(TreeClock, capture_timestamps=True, detect=True)
            analysis.begin(threads=trace.threads, trace_name=trace.name)
            analysis.feed_batch([])
            for batch in _partition(list(trace), [17]):
                analysis.feed_batch(batch)
                analysis.feed_batch([])
            _assert_results_match(analysis.finish(), reference)


class TestSessionBatchTransparency:
    """The same invariant one layer up: ``Session.run`` (batched) vs a
    hand-rolled per-event session walk, across the whole spec matrix."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_batched_run_matches_per_event_session(self, seed):
        trace = make_random_trace(seed, num_events=150)
        batched = Session(SPEC_MATRIX).run(trace)

        per_event = Session(SPEC_MATRIX)
        per_event.begin(threads=trace.threads, name=trace.name)
        for event in trace:
            per_event.feed(event)
        reference = per_event.finish()

        assert batched.num_events == reference.num_events == len(trace)
        for key in SPEC_MATRIX:
            left, right = batched[key], reference[key]
            assert left.num_events == right.num_events
            assert left.num_threads == right.num_threads
            if left.detection is not None or right.detection is not None:
                assert left.detection.checks == right.detection.checks
                assert [race.pair() for race in left.detection.races] == [
                    race.pair() for race in right.detection.races
                ]

    def test_session_run_with_tiny_batch_size_matches_default(self):
        trace = make_random_trace(42, num_events=120)
        default = Session(SPEC_MATRIX).run(trace)
        ragged = Session(SPEC_MATRIX).run(trace, batch_size=7)
        assert default.num_events == ragged.num_events
        for key in SPEC_MATRIX:
            left, right = default[key], ragged[key]
            if left.detection is not None:
                assert left.detection.race_count == right.detection.race_count
                assert [race.pair() for race in left.detection.races] == [
                    race.pair() for race in right.detection.races
                ]

    def test_empty_trace(self):
        result = Session(SPEC_MATRIX).run(Trace([], name="empty"))
        assert result.num_events == 0
        for key in SPEC_MATRIX:
            assert result[key].num_events == 0

    def test_feed_batch_before_begin_raises(self):
        session = Session(["hb+tc"])
        try:
            session.feed_batch([])
        except RuntimeError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("feed_batch before begin must raise")

"""Differential check: observability never changes analysis results.

Metrics and spans are only allowed to change *cost*, never output: the
same trace walked with the default registry disabled, enabled, and
enabled with span export active must produce bit-identical results —
per-event vector timestamps, race records in order, detection counts,
work counters.  An instrumentation site that mutates walk state (or
reorders per-spec work to batch its own bookkeeping) fails here.
"""

from __future__ import annotations

import pytest

from repro.api import Session, TraceSource
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from util_traces import make_random_trace

#: The evaluation spec matrix driven both ways (detect variants carry
#: the race sets; timestamp variants carry the per-event clocks).
SPECS = ["hb+tc+detect+timestamps", "hb+vc+detect", "shb+tc+detect", "maz+vc"]


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Restore the process-global obs state around every test."""
    registry = obs_metrics.get_registry()
    was_enabled = registry.enabled
    obs_tracing.shutdown_tracing()
    yield
    registry.enabled = was_enabled
    registry.reset()
    obs_tracing.shutdown_tracing()


def _walk(trace):
    session = Session(SPECS)
    return session.run(TraceSource(trace))


def _observables(session_result):
    """Everything a user can read from one walk, in comparable form."""
    out = {}
    for key, result in session_result.results.items():
        races = None
        if result.detection is not None:
            races = [race.pair() for race in result.detection.races]
        out[key] = {
            "events": session_result.num_events,
            "timestamps": (
                [str(ts) for ts in result.timestamps]
                if result.timestamps is not None
                else None
            ),
            "races": races,
            "work": result.work.as_row() if result.work is not None else None,
        }
    return out


@pytest.mark.parametrize("seed", [3, 11])
def test_results_identical_with_obs_disabled_enabled_and_traced(seed, tmp_path):
    trace = make_random_trace(seed=seed, num_threads=8, num_locks=3, num_events=300)
    registry = obs_metrics.get_registry()

    registry.disable()
    baseline = _observables(_walk(trace))

    registry.enable()
    with_metrics = _observables(_walk(trace))

    obs_tracing.configure_tracing(tmp_path / "spans.jsonl")
    with_spans = _observables(_walk(trace))
    obs_tracing.shutdown_tracing()

    assert with_metrics == baseline
    assert with_spans == baseline


def test_enabled_walk_actually_recorded_metrics():
    """Guard the guard: the enabled leg must not silently skip recording
    (otherwise the differential above would pass vacuously)."""
    trace = make_random_trace(seed=5, num_threads=4, num_locks=2, num_events=200)
    registry = obs_metrics.get_registry()
    registry.enable()
    _walk(trace)
    snapshot = registry.snapshot()
    fed = [v for k, v in snapshot.items() if k.startswith("session.events_fed")]
    assert fed and all(entry["value"] == len(trace) for entry in fed)
    assert any(k.startswith("engine.runs") for k in snapshot)


def test_span_export_covers_the_walk(tmp_path):
    trace = make_random_trace(seed=9, num_threads=4, num_locks=2, num_events=150)
    obs_tracing.configure_tracing(tmp_path / "spans.jsonl")
    result = _walk(trace)
    obs_tracing.shutdown_tracing()
    records = obs_tracing.read_spans(tmp_path / "spans.jsonl")
    roots = [r for r in records if r["name"] == "session.run"]
    assert len(roots) == 1
    assert roots[0]["attrs"]["events"] == result.num_events

"""Differential check: the colf binary container ≡ canonical STD text.

The colf format is only allowed to change *cost*, never content: any
trace serialized to both STD text and a colf container must decode to
the identical event sequence (eids, tids, kinds, targets), a session
fed from a colf file must report the identical race sets and timestamps
as one fed the text form, and decoding a container segment by segment
must equal decoding it whole.  This module drives every generator
scenario plus hypothesis-random traces through all three equivalences;
a layout or interning bug that silently reorders, drops or retypes a
single event fails here.
"""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.gen.scenarios import SCENARIOS
from repro.trace.colfmt import ColfReader, write_colf
from repro.trace.io import dumps_std, loads_std, save_trace
from util_traces import make_random_trace

#: Spec slice used for the session-equivalence checks: both clock
#: classes, detection on, over the strongest and weakest orders.
SESSION_SPECS = ["hb+tc+detect", "shb+vc+detect"]


def colf_round_trip(events, segment_events=64):
    """Serialize ``events`` to a colf container and decode it back."""
    buffer = io.BytesIO()
    write_colf(events, buffer, segment_events=segment_events)
    with ColfReader(buffer.getvalue()) as reader:
        return list(reader.iter_events())


def std_round_trip(events):
    """Serialize ``events`` to STD text and parse it back."""
    return list(loads_std(dumps_std(events)))


def assert_colf_equals_std(events):
    via_std = std_round_trip(events)
    via_colf = colf_round_trip(events)
    assert via_colf == via_std, (
        f"colf decode diverged from STD decode "
        f"({len(via_colf)} vs {len(via_std)} events)"
    )


class TestDecodeEquivalence:
    def test_all_generator_scenarios(self):
        for name, factory in sorted(SCENARIOS.items()):
            trace = factory(8, 600, 3)
            assert_colf_equals_std(list(trace))

    def test_fork_join_traces(self):
        trace = make_random_trace(seed=11, num_events=400, include_fork_join=True)
        assert_colf_equals_std(list(trace))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_traces(self, seed):
        trace = make_random_trace(seed=seed, num_events=150)
        assert_colf_equals_std(list(trace))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        segment_events=st.integers(min_value=1, max_value=97),
    )
    def test_any_segment_size_decodes_identically(self, seed, segment_events):
        events = list(make_random_trace(seed=seed, num_events=120))
        assert colf_round_trip(events, segment_events) == std_round_trip(events)


class TestSegmentEquivalence:
    def test_segment_sliced_decode_equals_whole_file(self):
        for name, factory in sorted(SCENARIOS.items()):
            events = list(factory(6, 500, 1))
            buffer = io.BytesIO()
            write_colf(events, buffer, segment_events=77)
            with ColfReader(buffer.getvalue()) as reader:
                whole = list(reader.iter_events())
                sliced = [
                    event for segment in reader.segments for event in segment.events()
                ]
                # Segments partition the ordinal space exactly.
                bounds = [
                    (segment.first_eid, segment.last_eid) for segment in reader.segments
                ]
            assert sliced == whole
            assert bounds[0][0] == 0 and bounds[-1][1] == len(events) - 1
            for (_, last), (first, _) in zip(bounds, bounds[1:]):
                assert first == last + 1


class TestSessionEquivalence:
    def _session_result(self, source):
        return Session(SESSION_SPECS).run(source)

    def _race_sets(self, result):
        return {
            key: [race.pair() for race in analysis.detection.races]
            for key, analysis in result
        }

    def test_colf_fed_session_equals_text_fed(self, tmp_path):
        for name, factory in sorted(SCENARIOS.items()):
            trace = factory(6, 500, 5)
            events = list(trace)
            std_path = tmp_path / f"{name}.std"
            colf_path = tmp_path / f"{name}.colf"
            save_trace(events, std_path, fmt="std")
            write_colf(events, colf_path, segment_events=128)

            from_text = self._session_result(str(std_path))
            from_colf = self._session_result(str(colf_path))
            assert from_colf.num_events == from_text.num_events == len(events)
            assert self._race_sets(from_colf) == self._race_sets(from_text), name

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_trace_race_sets_match(self, seed, tmp_path_factory):
        trace = make_random_trace(seed=seed, num_events=200)
        events = list(trace)
        root = tmp_path_factory.mktemp("colf-diff")
        std_path = root / "t.std"
        colf_path = root / "t.colf"
        save_trace(events, std_path, fmt="std")
        write_colf(events, colf_path, segment_events=31)
        from_text = self._session_result(str(std_path))
        from_colf = self._session_result(str(colf_path))
        assert self._race_sets(from_colf) == self._race_sets(from_text)

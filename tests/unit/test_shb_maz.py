"""Unit tests for the SHB and MAZ analyses."""

import pytest

from repro.analysis import (
    GraphOrder,
    HBAnalysis,
    MAZAnalysis,
    SHBAnalysis,
    compute_maz,
    compute_shb,
)
from repro.clocks import TreeClock, VectorClock
from repro.trace import TraceBuilder


@pytest.mark.parametrize("clock_class", [TreeClock, VectorClock])
class TestSHBTimestamps:
    def test_read_is_ordered_after_last_write(self, clock_class):
        trace = TraceBuilder().write(1, "x").read(2, "x").build()
        result = SHBAnalysis(clock_class, capture_timestamps=True).run(trace)
        # Unlike HB, the read of t2 must see the write of t1.
        assert result.timestamps[1] == {1: 1, 2: 1}

    def test_write_write_is_not_ordered_by_shb(self, clock_class):
        trace = TraceBuilder().write(1, "x").write(2, "x").build()
        result = SHBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[1] == {2: 1}

    def test_shb_contains_hb(self, clock_class, figure11_trace):
        shb = SHBAnalysis(clock_class, capture_timestamps=True).run(figure11_trace)
        hb = HBAnalysis(clock_class, capture_timestamps=True).run(figure11_trace)
        for shb_time, hb_time in zip(shb.timestamps, hb.timestamps):
            for tid, value in hb_time.items():
                assert shb_time.get(tid, 0) >= value

    def test_matches_graph_oracle(self, clock_class):
        trace = (
            TraceBuilder()
            .write(1, "x").sync(1, "l").read(2, "x")
            .sync(2, "l").write(2, "x").read(3, "x")
            .build()
        )
        result = SHBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps == GraphOrder(trace, "SHB").timestamps()

    def test_read_of_own_write_costs_nothing_extra(self, clock_class):
        trace = TraceBuilder().write(1, "x").read(1, "x").build()
        result = SHBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps == [{1: 1}, {1: 2}]


class TestSHBRaceDetection:
    def test_write_read_race_is_detected(self):
        trace = TraceBuilder().write(1, "x").read(2, "x").build()
        result = SHBAnalysis(TreeClock, detect=True).run(trace)
        assert result.detection.race_count == 1

    def test_protected_accesses_do_not_race(self, race_free_trace):
        result = SHBAnalysis(TreeClock, detect=True).run(race_free_trace)
        assert result.detection.race_count == 0

    def test_compute_shb_convenience(self):
        trace = TraceBuilder().write(1, "x").build()
        assert compute_shb(trace).partial_order == "SHB"


@pytest.mark.parametrize("clock_class", [TreeClock, VectorClock])
class TestMAZTimestamps:
    def test_conflicting_writes_are_ordered(self, clock_class):
        trace = TraceBuilder().write(1, "x").write(2, "x").build()
        result = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[1] == {1: 1, 2: 1}

    def test_read_to_write_is_ordered(self, clock_class):
        trace = TraceBuilder().read(1, "x").write(2, "x").build()
        result = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[1] == {1: 1, 2: 1}

    def test_read_read_is_not_ordered(self, clock_class):
        trace = TraceBuilder().read(1, "x").read(2, "x").build()
        result = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[1] == {2: 1}

    def test_accesses_to_different_variables_are_not_ordered(self, clock_class):
        trace = TraceBuilder().write(1, "x").write(2, "y").build()
        result = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[1] == {2: 1}

    def test_maz_contains_shb(self, clock_class):
        trace = (
            TraceBuilder()
            .write(1, "x").read(2, "x").write(3, "x")
            .sync(1, "l").sync(3, "l").read(1, "x")
            .build()
        )
        maz = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        shb = SHBAnalysis(clock_class, capture_timestamps=True).run(trace)
        for maz_time, shb_time in zip(maz.timestamps, shb.timestamps):
            for tid, value in shb_time.items():
                assert maz_time.get(tid, 0) >= value

    def test_matches_graph_oracle(self, clock_class):
        trace = (
            TraceBuilder()
            .write(1, "x").read(2, "x").read(3, "x").write(2, "x")
            .sync(3, "l").sync(1, "l").read(1, "x").write(3, "y").read(1, "y")
            .build()
        )
        result = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps == GraphOrder(trace, "MAZ").timestamps()

    def test_transitive_read_to_write_through_intermediate_write(self, clock_class):
        # r1(x) by t1, then w(x) by t2, then w(x) by t3: the second write must
        # be ordered after the read transitively even though only the first
        # read-to-write edge is materialized.
        trace = TraceBuilder().read(1, "x").write(2, "x").write(3, "x").build()
        result = MAZAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[2][1] == 1
        assert result.timestamps[2][2] == 1


class TestMAZDetection:
    def test_reversible_pair_is_reported(self):
        trace = TraceBuilder().write(1, "x").write(2, "x").build()
        result = MAZAnalysis(TreeClock, detect=True).run(trace)
        assert result.detection.race_count == 1

    def test_lock_ordered_pair_is_not_reversible(self, race_free_trace):
        result = MAZAnalysis(TreeClock, detect=True).run(race_free_trace)
        assert result.detection.race_count == 0

    def test_detection_counts_agree_between_clocks(self):
        trace = (
            TraceBuilder()
            .write(1, "x").read(2, "x").write(3, "x").write(1, "y").write(2, "y")
            .build()
        )
        tc = MAZAnalysis(TreeClock, detect=True).run(trace)
        vc = MAZAnalysis(VectorClock, detect=True).run(trace)
        assert tc.detection.race_count == vc.detection.race_count

    def test_compute_maz_convenience(self):
        trace = TraceBuilder().write(1, "x").build()
        assert compute_maz(trace).partial_order == "MAZ"

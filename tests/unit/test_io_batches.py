"""Unit tests for the chunked decoders and caching parsers of :mod:`repro.trace.io`."""

import gzip

import pytest

from repro.trace import Trace, TraceBuilder
from repro.trace import event as ev
from repro.trace.io import (
    DEFAULT_BATCH_SIZE,
    CsvParser,
    StdParser,
    TraceFormatError,
    dumps_csv,
    dumps_std,
    iter_csv,
    iter_csv_batches,
    iter_std,
    iter_std_batches,
    iter_trace_chunks,
    parse_std_line,
    save_trace,
)


@pytest.fixture
def sample_trace():
    builder = TraceBuilder()
    builder.fork(1, 2).acquire(1, "l").write(1, "x").release(1, "l")
    builder.acquire(2, "l").read(2, "x").release(2, "l").join(1, 2)
    return builder.build()


class TestStdParser:
    def test_matches_parse_std_line_on_every_canonical_line(self, sample_trace):
        parser = StdParser()
        for number, line in enumerate(dumps_std(sample_trace).splitlines(), start=1):
            assert parser.parse(line, number - 1, number) == parse_std_line(line, number - 1, number)

    @pytest.mark.parametrize(
        "line",
        [
            "  T3 | acq( lock ) | somewhere  ",  # whitespace tolerance
            "T1|begin",
            "T1|end",
            "T9|fork(T12)|f.py:3",
            "T9|join(t12)",  # lowercase thread prefix
            "T2|w(a|b)|loc",  # '|' inside a target: regex fallback path
            "# a comment",
            "",
            "T4|r(x)",
        ],
    )
    def test_weird_but_legal_lines_match_the_regex(self, line):
        assert StdParser().parse(line, 5, 1) == parse_std_line(line, 5, 1)

    @pytest.mark.parametrize(
        "line",
        [
            "garbage",
            "T1|frobnicate(x)",
            "T1|w()",
            "T1|fork(xyz)",
            "Tx|w(v)",
            "T1|r",
            "T1|w(x)|",  # empty location field
            "T1|w(x)|foo bar",  # whitespace inside the location field
            "T1|begin|a b",
        ],
    )
    def test_malformed_lines_raise_like_the_regex(self, line):
        with pytest.raises(TraceFormatError):
            parse_std_line(line, 0, 1)  # the regex is the format authority
        with pytest.raises(TraceFormatError):
            StdParser().parse(line, 0, 1)

    def test_repeated_targets_share_one_interned_string(self):
        parser = StdParser()
        first = parser.parse("T1|w(shared_var)|a", 0, 1)
        second = parser.parse("T2|r(shared_var)|b", 1, 2)
        assert first.target is second.target

    def test_cache_does_not_leak_errors_across_lines(self):
        parser = StdParser()
        with pytest.raises(TraceFormatError, match="line 1"):
            parser.parse("T1|w()", 0, 1)
        with pytest.raises(TraceFormatError, match="line 9"):
            parser.parse("T1|w()", 0, 9)


class TestStdBatches:
    def test_batches_concatenate_to_the_event_stream(self, sample_trace):
        lines = dumps_std(sample_trace).splitlines()
        batches = list(iter_std_batches(lines, batch_size=3))
        assert [len(batch) for batch in batches[:-1]] == [3] * (len(batches) - 1)
        assert [e for batch in batches for e in batch] == list(iter_std(lines))

    def test_default_batch_size_is_shared_constant(self, sample_trace):
        lines = dumps_std(sample_trace).splitlines()
        batches = list(iter_std_batches(lines))
        assert len(batches) == 1  # trace much smaller than DEFAULT_BATCH_SIZE
        assert DEFAULT_BATCH_SIZE >= 1024

    def test_blank_and_comment_lines_do_not_consume_eids(self):
        lines = ["# header", "", "T1|w(x)|a", "  ", "T2|r(x)|b"]
        (batch,) = list(iter_std_batches(lines, batch_size=10))
        assert [event.eid for event in batch] == [0, 1]

    def test_empty_input_yields_no_batches(self):
        assert list(iter_std_batches([])) == []

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_std_batches(["T1|w(x)"], batch_size=0))

    def test_malformed_line_raises_during_its_batch(self):
        lines = ["T1|w(x)|a", "not a line"]
        with pytest.raises(TraceFormatError, match="line 2"):
            list(iter_std_batches(lines, batch_size=10))


class TestCsvBatches:
    def test_batches_match_per_event_iterator(self, sample_trace):
        text = dumps_csv(sample_trace)
        batches = list(iter_csv_batches(text.splitlines(), batch_size=3))
        assert [e for batch in batches for e in batch] == list(iter_csv(text.splitlines()))
        assert [e for batch in batches for e in batch] == list(sample_trace)

    def test_header_only_input_yields_no_batches(self):
        assert list(iter_csv_batches(["eid,tid,kind,target"])) == []
        assert list(iter_csv_batches([])) == []

    def test_bad_header_raises(self):
        with pytest.raises(TraceFormatError, match="header"):
            list(iter_csv_batches(["nope,nope,nope,nope", "0,1,w,x"]))

    def test_column_count_error_carries_line_number(self):
        lines = ["eid,tid,kind,target", "0,1,w,x", "1,2,r"]
        with pytest.raises(TraceFormatError, match="line 3"):
            list(iter_csv_batches(lines, batch_size=10))

    def test_parser_interns_repeated_targets(self):
        parser = CsvParser()
        first = parser.parse_row(["0", "1", "w", "var"], 0, 2)
        second = parser.parse_row(["1", "2", "r", "var"], 1, 3)
        assert first.target is second.target
        assert second.kind is ev.OpKind.READ


class TestTraceChunksBatchSize:
    def test_batch_size_kwarg_is_honored(self, tmp_path, sample_trace):
        path = tmp_path / "t.std"
        save_trace(sample_trace, path)
        chunks = list(iter_trace_chunks(path, batch_size=2))
        assert [len(chunk) for chunk in chunks[:-1]] == [2] * (len(chunks) - 1)
        assert [e for chunk in chunks for e in chunk] == list(sample_trace)

    def test_batch_size_wins_over_chunk_events(self, tmp_path, sample_trace):
        path = tmp_path / "t.std"
        save_trace(sample_trace, path)
        chunks = list(iter_trace_chunks(path, chunk_events=100, batch_size=3))
        assert len(chunks[0]) == 3

    def test_gz_roundtrip_through_buffered_reader(self, tmp_path, sample_trace):
        path = tmp_path / "t.std.gz"
        save_trace(sample_trace, path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.read() == dumps_std(sample_trace)
        chunks = list(iter_trace_chunks(path, batch_size=4))
        assert [e for chunk in chunks for e in chunk] == list(sample_trace)

    def test_csv_gz_chunks(self, tmp_path, sample_trace):
        path = tmp_path / "t.csv.gz"
        save_trace(sample_trace, path, fmt="csv")
        chunks = list(iter_trace_chunks(path, batch_size=3))
        assert Trace([e for chunk in chunks for e in chunk]) == sample_trace

"""Unit tests for trace serialization (:mod:`repro.trace.io`)."""

import gzip
import io

import pytest

from repro.trace import Trace, TraceBuilder
from repro.trace import event as ev
from repro.trace.io import (
    TraceFormatError,
    dumps_csv,
    dumps_std,
    infer_format,
    iter_trace_chunks,
    iter_trace_file,
    load_trace,
    loads_csv,
    loads_std,
    parse_std_line,
    save_trace,
    sniff_format,
    std_line,
)


@pytest.fixture
def sample_trace() -> Trace:
    builder = TraceBuilder(name="io-sample")
    builder.write(1, "x").acquire(1, "l1").release(1, "l1")
    builder.fork(1, 2)
    builder.acquire(2, "l1").read(2, "x").release(2, "l1")
    builder.join(1, 2)
    return builder.build()


class TestStdFormat:
    def test_dumps_produces_one_line_per_event(self, sample_trace):
        text = dumps_std(sample_trace)
        assert len(text.strip().splitlines()) == len(sample_trace)

    def test_roundtrip_preserves_events(self, sample_trace):
        restored = loads_std(dumps_std(sample_trace), name="io-sample")
        assert restored == sample_trace
        assert restored.name == "io-sample"

    def test_dumps_format_example(self):
        trace = Trace([ev.write(3, "v")])
        assert dumps_std(trace) == "T3|w(v)|0\n"

    def test_fork_target_uses_thread_syntax(self):
        trace = Trace([ev.fork(1, 2)])
        assert "fork(T2)" in dumps_std(trace)

    def test_loads_ignores_comments_and_blank_lines(self):
        text = "# comment\n\nT1|w(x)|0\n"
        trace = loads_std(text)
        assert len(trace) == 1

    def test_loads_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            loads_std("this is not a trace line")

    def test_loads_rejects_unknown_operation(self):
        with pytest.raises(TraceFormatError):
            loads_std("T1|frobnicate(x)|0")

    def test_loads_rejects_missing_target(self):
        with pytest.raises(TraceFormatError):
            loads_std("T1|w|0")

    def test_loads_rejects_bad_fork_target(self):
        with pytest.raises(TraceFormatError):
            loads_std("T1|fork(banana)|0")

    def test_empty_text_gives_empty_trace(self):
        assert len(loads_std("")) == 0

    def test_begin_end_have_no_target(self):
        trace = Trace([ev.begin(1), ev.end(1)])
        restored = loads_std(dumps_std(trace))
        assert [event.kind for event in restored] == [event.kind for event in trace]


class TestCsvFormat:
    def test_roundtrip(self, sample_trace):
        restored = loads_csv(dumps_csv(sample_trace))
        assert restored == sample_trace

    def test_header_row_present(self, sample_trace):
        assert dumps_csv(sample_trace).splitlines()[0] == "eid,tid,kind,target"

    def test_rejects_wrong_header(self):
        with pytest.raises(TraceFormatError):
            loads_csv("a,b,c,d\n1,2,w,x\n")

    def test_rejects_wrong_column_count(self):
        with pytest.raises(TraceFormatError):
            loads_csv("eid,tid,kind,target\n0,1,w\n")

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceFormatError):
            loads_csv("eid,tid,kind,target\n0,1,zap,x\n")

    def test_empty_text_gives_empty_trace(self):
        assert len(loads_csv("")) == 0

    def test_blank_lines_are_skipped(self):
        text = "eid,tid,kind,target\n0,1,w,x\n\n"
        assert len(loads_csv(text)) == 1


class TestFileHelpers:
    def test_save_and_load_std_path(self, tmp_path, sample_trace):
        path = tmp_path / "trace.std"
        save_trace(sample_trace, path, fmt="std")
        assert load_trace(path, fmt="std") == sample_trace

    def test_save_and_load_csv_path(self, tmp_path, sample_trace):
        path = tmp_path / "trace.csv"
        save_trace(sample_trace, path, fmt="csv")
        assert load_trace(path, fmt="csv") == sample_trace

    def test_save_to_file_object(self, sample_trace):
        buffer = io.StringIO()
        save_trace(sample_trace, buffer, fmt="std")
        buffer.seek(0)
        assert load_trace(buffer, fmt="std") == sample_trace

    def test_unknown_format_raises(self, tmp_path, sample_trace):
        with pytest.raises(ValueError):
            save_trace(sample_trace, tmp_path / "x", fmt="yaml")
        with pytest.raises(ValueError):
            load_trace(io.StringIO(""), fmt="yaml")

    def test_load_assigns_name(self, tmp_path, sample_trace):
        path = tmp_path / "trace.std"
        save_trace(sample_trace, path)
        assert load_trace(path, name="renamed").name == "renamed"


class TestGzipSupport:
    @pytest.mark.parametrize("fmt", ["std", "csv"])
    def test_gz_suffix_roundtrips(self, tmp_path, sample_trace, fmt):
        path = tmp_path / f"trace.{fmt}.gz"
        save_trace(sample_trace, path, fmt=fmt)
        assert load_trace(path, fmt=fmt) == sample_trace

    def test_gz_file_is_actually_compressed(self, tmp_path, sample_trace):
        path = tmp_path / "trace.std.gz"
        save_trace(sample_trace, path, fmt="std")
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert loads_std(handle.read()) == sample_trace
        # A gzip member always starts with the magic bytes 1f 8b.
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_gz_compression_shrinks_repetitive_traces(self, tmp_path):
        builder = TraceBuilder(name="big")
        for index in range(2000):
            builder.write(1 + index % 4, f"x{index % 8}")
        trace = builder.build()
        plain, packed = tmp_path / "t.std", tmp_path / "t.std.gz"
        save_trace(trace, plain)
        save_trace(trace, packed)
        assert packed.stat().st_size < plain.stat().st_size / 5
        assert load_trace(packed) == trace

    def test_plain_paths_are_untouched_by_gzip_handling(self, tmp_path, sample_trace):
        path = tmp_path / "trace.std"
        save_trace(sample_trace, path)
        assert path.read_bytes()[:2] != b"\x1f\x8b"


class TestInferFormat:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("trace.std", "std"),
            ("trace.std.gz", "std"),
            ("trace.csv", "csv"),
            ("trace.csv.gz", "csv"),
            ("trace.gz", "std"),
            ("mystery.bin", "std"),
        ],
    )
    def test_inference_by_suffix_for_unreadable_paths(self, name, expected):
        # The names above don't exist on disk: suffix inference is the
        # fallback when there are no content bytes to sniff.
        assert infer_format(name) == expected


class TestContentSniffing:
    """``infer_format`` trusts magic/content bytes over the file name."""

    def test_colf_magic_wins_over_std_suffix(self, tmp_path, sample_trace):
        path = tmp_path / "misnamed.std"
        save_trace(sample_trace, path, fmt="colf")
        assert infer_format(path) == "colf"
        assert list(iter_trace_file(path)) == list(sample_trace)

    def test_gzip_magic_wins_over_plain_suffix(self, tmp_path, sample_trace):
        path = tmp_path / "actually-gzipped.std"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(dumps_std(sample_trace))
        assert infer_format(path) == "std"
        assert list(iter_trace_file(path)) == list(sample_trace)

    def test_csv_header_wins_over_std_suffix(self, tmp_path, sample_trace):
        path = tmp_path / "actually-csv.std"
        path.write_text(dumps_csv(sample_trace))
        assert infer_format(path) == "csv"
        assert list(iter_trace_file(path)) == list(sample_trace)

    def test_std_content_wins_over_csv_suffix(self, tmp_path, sample_trace):
        path = tmp_path / "actually-std.csv"
        path.write_text(dumps_std(sample_trace))
        assert infer_format(path) == "std"
        assert list(iter_trace_file(path)) == list(sample_trace)

    def test_gzipped_csv_sniffed_through_the_gzip_layer(self, tmp_path, sample_trace):
        path = tmp_path / "mystery.bin"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(dumps_csv(sample_trace))
        assert infer_format(path) == "csv"
        assert list(iter_trace_file(path)) == list(sample_trace)

    def test_gzipped_colf_rejected_cleanly(self, tmp_path, sample_trace):
        buffer = io.BytesIO()
        save_trace(sample_trace, buffer, fmt="colf")
        path = tmp_path / "t.colf.gz"
        with gzip.open(path, "wb") as handle:
            handle.write(buffer.getvalue())
        with pytest.raises(TraceFormatError, match="gzipped colf"):
            infer_format(path)

    def test_sniff_format_on_prefixes(self, sample_trace):
        from repro.trace.colfmt import COLF_MAGIC

        assert sniff_format(COLF_MAGIC + b"rest") == "colf"
        assert sniff_format(dumps_std(sample_trace).encode()) == "std"
        assert sniff_format(dumps_csv(sample_trace).encode()) == "csv"
        assert sniff_format(b"\x1f") is None  # too short to judge
        assert sniff_format(b"") is None

    def test_empty_file_falls_back_to_suffix(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_bytes(b"")
        assert infer_format(path) == "csv"


class TestStdLine:
    def test_std_line_matches_dumps_std(self, sample_trace):
        lines = [std_line(event) for event in sample_trace]
        assert "\n".join(lines) + "\n" == dumps_std(sample_trace)

    def test_parse_std_line_round_trips(self, sample_trace):
        for event in sample_trace:
            parsed = parse_std_line(std_line(event), eid=event.eid)
            assert parsed == event

    def test_parse_std_line_skips_blanks_and_comments(self):
        assert parse_std_line("", eid=0) is None
        assert parse_std_line("   ", eid=0) is None
        assert parse_std_line("# a comment", eid=0) is None

    def test_parse_std_line_rejects_garbage(self):
        with pytest.raises(TraceFormatError, match="cannot parse"):
            parse_std_line("not a trace line", eid=0, line_number=7)


class TestIterTraceChunks:
    def test_chunks_cover_the_file_in_order(self, tmp_path, sample_trace):
        path = tmp_path / "t.std.gz"
        save_trace(sample_trace, path)
        chunks = list(iter_trace_chunks(path, chunk_events=3))
        assert [len(chunk) for chunk in chunks[:-1]] == [3] * (len(chunks) - 1)
        assert len(chunks[-1]) <= 3
        flattened = [event for chunk in chunks for event in chunk]
        assert flattened == list(sample_trace)

    def test_single_chunk_when_larger_than_file(self, tmp_path, sample_trace):
        path = tmp_path / "t.std"
        save_trace(sample_trace, path)
        chunks = list(iter_trace_chunks(path, chunk_events=10_000))
        assert len(chunks) == 1 and len(chunks[0]) == len(sample_trace)

    def test_empty_file_yields_no_chunks(self, tmp_path):
        path = tmp_path / "empty.std"
        path.write_text("")
        assert list(iter_trace_chunks(path)) == []

    def test_invalid_chunk_size_rejected(self, tmp_path, sample_trace):
        path = tmp_path / "t.std"
        save_trace(sample_trace, path)
        with pytest.raises(ValueError, match="chunk_events"):
            list(iter_trace_chunks(path, chunk_events=0))

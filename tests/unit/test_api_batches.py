"""Unit tests for the batched source surface (``event_batches``) and
``Session.feed_batch`` plumbing."""

import threading

import pytest

from repro.api import Session
from repro.api.sources import (
    DEFAULT_BATCH_SIZE,
    FileSource,
    GeneratorSource,
    QueueSource,
    TraceSource,
    iter_event_batches,
)
from repro.trace import TraceBuilder, save_trace


@pytest.fixture
def small_trace():
    builder = TraceBuilder(name="batchy")
    for index in range(10):
        builder.write(1 + index % 2, f"x{index % 3}")
    return builder.build()


class _MinimalSource:
    """A three-method source with no native ``event_batches``."""

    def __init__(self, trace):
        self._trace = trace
        self.name = "minimal"
        self.events_emitted = 0

    def threads(self):
        return None

    def events(self):
        for event in self._trace:
            self.events_emitted += 1
            yield event


class TestIterEventBatches:
    def test_trace_source_batches_natively(self, small_trace):
        source = TraceSource(small_trace)
        batches = list(iter_event_batches(source, batch_size=4))
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert [e for batch in batches for e in batch] == list(small_trace)
        assert source.events_emitted == len(small_trace)  # counted once

    def test_fallback_adapter_chunks_plain_sources(self, small_trace):
        source = _MinimalSource(small_trace)
        batches = list(iter_event_batches(source, batch_size=3))
        assert [len(batch) for batch in batches] == [3, 3, 3, 1]
        assert [e for batch in batches for e in batch] == list(small_trace)
        assert source.events_emitted == len(small_trace)

    def test_file_source_batches_from_disk(self, tmp_path, small_trace):
        path = tmp_path / "t.std.gz"
        save_trace(small_trace, path)
        source = FileSource(str(path))
        batches = list(iter_event_batches(source, batch_size=4))
        assert [e for batch in batches for e in batch] == list(small_trace)
        assert source.events_emitted == len(small_trace)

    def test_generator_source_batches_the_materialized_trace(self, small_trace):
        source = GeneratorSource(lambda: small_trace, name="gen")
        batches = list(iter_event_batches(source, batch_size=6))
        assert [len(batch) for batch in batches] == [6, 4]
        assert source.events_emitted == len(small_trace)

    def test_invalid_batch_size_rejected(self, small_trace):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_event_batches(TraceSource(small_trace), batch_size=0))

    def test_default_batch_size_matches_io_constant(self):
        from repro.trace.io import DEFAULT_BATCH_SIZE as IO_DEFAULT

        assert DEFAULT_BATCH_SIZE == IO_DEFAULT


class TestQueueSourceBatches:
    def test_greedy_drain_without_waiting_for_full_batches(self, small_trace):
        source = QueueSource(name="q")
        for event in small_trace:
            source.put(event)
        source.close()
        batches = list(source.event_batches(batch_size=100))
        # Everything was queued upfront, so one greedy batch drains it all.
        assert [e for batch in batches for e in batch] == list(small_trace)
        assert source.events_emitted == len(small_trace)

    def test_batch_size_caps_the_drain(self, small_trace):
        source = QueueSource(name="q")
        for event in small_trace:
            source.put(event)
        source.close()
        batches = list(source.event_batches(batch_size=4))
        assert [len(batch) for batch in batches] == [4, 4, 2]

    def test_bounded_queue_feeds_a_threaded_batched_walk(self, small_trace):
        source = QueueSource(name="q", maxsize=4)
        session = Session(["shb+tc+detect"])
        results = {}

        def walk():
            results["result"] = session.run(source)

        thread = threading.Thread(target=walk)
        thread.start()
        for event in small_trace:
            source.put(event, timeout=5.0)
        source.close()
        thread.join(10.0)
        assert not thread.is_alive()
        assert results["result"].num_events == len(small_trace)


class TestSessionFeedBatch:
    def test_multi_spec_feed_batch_attributes_batch_times(self, small_trace):
        session = Session(["hb+tc", "hb+vc"])
        session.begin(threads=small_trace.threads, name=small_trace.name)
        events = list(small_trace)
        session.feed_batch(events[:6])
        session.feed_batch(events[6:])
        result = session.finish()
        assert result.num_events == len(small_trace)
        for _, analysis_result in result:
            assert analysis_result.num_events == len(small_trace)
            assert analysis_result.elapsed_ns > 0

    def test_feed_is_a_singleton_batch(self, small_trace):
        session = Session(["hb+tc+detect", "hb+vc+detect"])
        session.begin(threads=small_trace.threads, name=small_trace.name)
        for event in small_trace:
            session.feed(event)
        result = session.finish()
        assert result.num_events == len(small_trace)

    def test_run_accepts_batch_size(self, small_trace):
        result = Session(["shb+tc+detect"]).run(small_trace, batch_size=3)
        assert result.num_events == len(small_trace)

    def test_feed_batch_before_begin_raises(self):
        with pytest.raises(RuntimeError, match="begin"):
            Session(["hb+tc"]).feed_batch([])

    @pytest.mark.parametrize("batch_size", [0, -7])
    def test_engine_run_rejects_invalid_batch_size(self, small_trace, batch_size):
        from repro.analysis import HBAnalysis

        with pytest.raises(ValueError, match="batch_size"):
            HBAnalysis().run(small_trace, batch_size=batch_size)

"""Unit tests for epochs and the work counter / clock context plumbing."""

import pytest

from repro.clocks import (
    CLOCK_CLASSES,
    ClockContext,
    Epoch,
    TreeClock,
    VectorClock,
    WorkCounter,
    clock_class_by_name,
    clock_name,
    epoch_of,
    is_empty,
)
from repro.clocks.base import vt_equal, vt_get, vt_join, vt_leq
from repro.clocks.epoch import EMPTY_EPOCH


class TestEpoch:
    def test_happens_before_true_when_clock_knows_enough(self, context):
        clock = VectorClock(context)
        clock.increment(1, 5)
        assert Epoch(tid=1, clk=5).happens_before(clock)
        assert Epoch(tid=1, clk=3).happens_before(clock)

    def test_happens_before_false_when_clock_is_behind(self, context):
        clock = VectorClock(context)
        clock.increment(1, 2)
        assert not Epoch(tid=1, clk=3).happens_before(clock)

    def test_happens_before_works_with_tree_clocks(self, context):
        clock = TreeClock(context, owner=1)
        clock.increment(1, 4)
        assert Epoch(tid=1, clk=4).happens_before(clock)
        assert not Epoch(tid=1, clk=5).happens_before(clock)

    def test_epoch_of(self, context):
        clock = VectorClock(context)
        clock.increment(2, 7)
        assert epoch_of(clock, 2) == Epoch(tid=2, clk=7)

    def test_is_empty(self):
        assert is_empty(None)
        assert is_empty(EMPTY_EPOCH)
        assert is_empty(Epoch(tid=3, clk=0))
        assert not is_empty(Epoch(tid=3, clk=1))

    def test_str_format(self):
        assert str(Epoch(tid=2, clk=9)) == "9@t2"

    def test_empty_epoch_happens_before_everything(self, context):
        assert EMPTY_EPOCH.happens_before(VectorClock(context))


class TestWorkCounter:
    def test_record_increment(self):
        counter = WorkCounter()
        counter.record_increment()
        assert counter.increments == 1
        assert counter.entries_processed == 1
        assert counter.entries_updated == 1

    def test_record_join_and_copy(self):
        counter = WorkCounter()
        counter.record_join(processed=10, updated=3)
        counter.record_copy(processed=4, updated=4)
        assert counter.joins == 1 and counter.copies == 1
        assert counter.entries_processed == 14
        assert counter.entries_updated == 7

    def test_merged_with(self):
        a, b = WorkCounter(), WorkCounter()
        a.record_join(5, 2)
        b.record_copy(3, 1)
        merged = a.merged_with(b)
        assert merged.entries_processed == 8
        assert merged.entries_updated == 3
        assert merged.joins == 1 and merged.copies == 1

    def test_reset(self):
        counter = WorkCounter()
        counter.record_join(5, 2)
        counter.reset()
        assert counter.entries_processed == 0
        assert counter.joins == 0


class TestClockContext:
    def test_threads_are_deduplicated_in_order(self):
        context = ClockContext(threads=[3, 1, 3, 2, 1])
        assert list(context.threads) == [3, 1, 2]
        assert context.num_threads == 3

    def test_index_of_mapping(self):
        context = ClockContext(threads=[5, 7])
        assert context.index_of == {5: 0, 7: 1}

    def test_require_thread_raises_for_unknown(self):
        context = ClockContext(threads=[1])
        with pytest.raises(KeyError):
            context.require_thread(9)


class TestVectorTimeHelpers:
    def test_vt_get_defaults_to_zero(self):
        assert vt_get({1: 4}, 2) == 0

    def test_vt_leq(self):
        assert vt_leq({1: 1}, {1: 2, 2: 1})
        assert not vt_leq({1: 3}, {1: 2})
        assert vt_leq({}, {1: 1})

    def test_vt_join(self):
        assert vt_join({1: 3, 2: 1}, {2: 4}) == {1: 3, 2: 4}

    def test_vt_equal_treats_missing_as_zero(self):
        assert vt_equal({1: 0}, {})
        assert not vt_equal({1: 1}, {})


class TestRegistry:
    def test_clock_classes_registry(self):
        assert CLOCK_CLASSES["VC"] is VectorClock
        assert CLOCK_CLASSES["TC"] is TreeClock

    def test_clock_class_by_name_is_case_insensitive(self):
        assert clock_class_by_name("vc") is VectorClock
        assert clock_class_by_name("Tc") is TreeClock

    def test_clock_class_by_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            clock_class_by_name("mystery")

    def test_clock_name(self):
        assert clock_name(VectorClock) == "VC"
        assert clock_name(TreeClock) == "TC"
        assert clock_name(dict) == "dict"

"""Unit tests for the event model (:mod:`repro.trace.event`)."""

import pytest

from repro.trace import event as ev
from repro.trace.event import (
    ACCESS_KINDS,
    LOCK_KINDS,
    SYNC_KINDS,
    Event,
    OpKind,
)


class TestConstructors:
    def test_read_constructor(self):
        event = ev.read(1, "x")
        assert event.tid == 1
        assert event.kind is OpKind.READ
        assert event.target == "x"

    def test_write_constructor(self):
        event = ev.write(2, "y")
        assert event.kind is OpKind.WRITE
        assert event.variable == "y"

    def test_acquire_constructor(self):
        event = ev.acquire(3, "lock")
        assert event.kind is OpKind.ACQUIRE
        assert event.lock == "lock"

    def test_release_constructor(self):
        event = ev.release(3, "lock")
        assert event.kind is OpKind.RELEASE
        assert event.lock == "lock"

    def test_fork_constructor(self):
        event = ev.fork(1, 7)
        assert event.kind is OpKind.FORK
        assert event.other_thread == 7

    def test_join_constructor(self):
        event = ev.join(1, 7)
        assert event.kind is OpKind.JOIN
        assert event.other_thread == 7

    def test_begin_end_constructors(self):
        assert ev.begin(4).kind is OpKind.BEGIN
        assert ev.end(4).kind is OpKind.END
        assert ev.begin(4).target is None

    def test_default_eid_is_minus_one(self):
        assert ev.read(1, "x").eid == -1

    def test_explicit_eid(self):
        assert ev.read(1, "x", eid=42).eid == 42


class TestClassification:
    def test_read_flags(self):
        event = ev.read(1, "x")
        assert event.is_read and event.is_access
        assert not event.is_write and not event.is_sync

    def test_write_flags(self):
        event = ev.write(1, "x")
        assert event.is_write and event.is_access
        assert not event.is_read

    def test_acquire_flags(self):
        event = ev.acquire(1, "l")
        assert event.is_acquire and event.is_lock_op and event.is_sync
        assert not event.is_access

    def test_release_flags(self):
        event = ev.release(1, "l")
        assert event.is_release and event.is_lock_op and event.is_sync

    def test_fork_join_are_sync(self):
        assert ev.fork(1, 2).is_sync
        assert ev.join(1, 2).is_sync

    def test_kind_sets_are_disjoint_where_expected(self):
        assert ACCESS_KINDS.isdisjoint(LOCK_KINDS)
        assert ACCESS_KINDS.isdisjoint(SYNC_KINDS)
        assert LOCK_KINDS <= SYNC_KINDS


class TestAccessors:
    def test_variable_accessor_rejects_non_access(self):
        with pytest.raises(ValueError):
            _ = ev.acquire(1, "l").variable

    def test_lock_accessor_rejects_non_lock(self):
        with pytest.raises(ValueError):
            _ = ev.read(1, "x").lock

    def test_other_thread_rejects_non_fork_join(self):
        with pytest.raises(ValueError):
            _ = ev.read(1, "x").other_thread

    def test_events_are_hashable_and_frozen(self):
        event = ev.read(1, "x", eid=3)
        assert hash(event) == hash(Event(eid=3, tid=1, kind=OpKind.READ, target="x"))
        with pytest.raises(AttributeError):
            event.tid = 5  # type: ignore[misc]


class TestConflicts:
    def test_write_write_same_variable_conflicts(self):
        assert ev.write(1, "x").conflicts_with(ev.write(2, "x"))

    def test_read_write_conflicts(self):
        assert ev.read(1, "x").conflicts_with(ev.write(2, "x"))
        assert ev.write(1, "x").conflicts_with(ev.read(2, "x"))

    def test_read_read_does_not_conflict(self):
        assert not ev.read(1, "x").conflicts_with(ev.read(2, "x"))

    def test_same_thread_does_not_conflict(self):
        assert not ev.write(1, "x").conflicts_with(ev.write(1, "x"))

    def test_different_variables_do_not_conflict(self):
        assert not ev.write(1, "x").conflicts_with(ev.write(2, "y"))

    def test_lock_events_do_not_conflict(self):
        assert not ev.acquire(1, "l").conflicts_with(ev.acquire(2, "l"))


class TestRendering:
    def test_pretty_access(self):
        assert ev.write(1, "x").pretty() == "t1: w(x)"

    def test_pretty_lock(self):
        assert ev.acquire(2, "l").pretty() == "t2: acq(l)"

    def test_pretty_fork(self):
        assert ev.fork(1, 3).pretty() == "t1: fork(t3)"

    def test_pretty_begin(self):
        assert ev.begin(5).pretty() == "t5: begin"

    def test_str_matches_pretty(self):
        event = ev.read(4, "z")
        assert str(event) == event.pretty()

"""Unit tests for spans and the JSON-lines exporter (:mod:`repro.obs.tracing`)."""

import io
import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    SCHEMA,
    configure_tracing,
    current_span,
    iter_spans,
    read_spans,
    shutdown_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def clean_tracing_state():
    """Every test starts and ends with tracing disabled."""
    shutdown_tracing()
    yield
    shutdown_tracing()


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        first, second = span("a"), span("b")
        assert first is second  # the shared no-op, not fresh objects

    def test_noop_supports_the_span_protocol(self):
        with span("a", x=1) as live:
            live.set(y=2)
        assert current_span() is None


class TestSpanExport:
    def test_round_trip_through_a_file(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        with span("outer", trace="demo") as outer:
            with span("inner", batch=1):
                pass
            outer.set(events=42)
        shutdown_tracing()

        records = read_spans(target)
        assert [r["name"] for r in records] == ["inner", "outer"]  # exported on exit
        inner, outer = records
        assert all(r["schema"] == SCHEMA for r in records)
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"trace": "demo", "events": 42}
        assert inner["dur_ns"] >= 0
        assert outer["dur_ns"] >= inner["dur_ns"]

    def test_exports_to_an_open_stream(self):
        buffer = io.StringIO()
        configure_tracing(buffer)
        with span("s"):
            pass
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert len(lines) == 1 and lines[0]["name"] == "s"

    def test_error_spans_record_the_exception(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        shutdown_tracing()
        (record,) = read_spans(target)
        assert record["error"] == "RuntimeError: boom"

    def test_shutdown_is_idempotent_and_disables(self, tmp_path):
        configure_tracing(tmp_path / "spans.jsonl")
        assert tracing_enabled()
        shutdown_tracing()
        shutdown_tracing()
        assert not tracing_enabled()

    def test_reconfigure_replaces_the_exporter(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        configure_tracing(first)
        with span("one"):
            pass
        configure_tracing(second)
        with span("two"):
            pass
        shutdown_tracing()
        assert [r["name"] for r in read_spans(first)] == ["one"]
        assert [r["name"] for r in read_spans(second)] == ["two"]


class TestNesting:
    def test_current_span_tracks_the_innermost(self, tmp_path):
        configure_tracing(tmp_path / "spans.jsonl")
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_sibling_threads_get_independent_parents(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        ready = threading.Barrier(2)

        def walk(label):
            ready.wait()
            with span("root", label=label):
                with span("child", label=label):
                    pass

        threads = [threading.Thread(target=walk, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shutdown_tracing()

        records = read_spans(target)
        roots = {r["attrs"]["label"]: r for r in records if r["name"] == "root"}
        children = [r for r in records if r["name"] == "child"]
        assert len(roots) == 2 and len(children) == 2
        for child in children:
            # Each child must nest under its own thread's root, never the
            # sibling's — this is what contextvars buys over a global.
            assert child["parent_id"] == roots[child["attrs"]["label"]]["span_id"]


class TestReadSpans:
    def test_strict_rejects_non_schema_lines(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text('{"schema":"other/1"}\n')
        with pytest.raises(ValueError, match="not a"):
            read_spans(target, strict=True)

    def test_strict_rejects_invalid_json(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_spans(target, strict=True)

    def test_lenient_skips_and_counts_corrupt_lines(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        with span("s"):
            pass
        shutdown_tracing()
        with open(target, "a") as handle:
            handle.write("not json\n")
            handle.write('{"schema":"other/1"}\n')
        errors = []
        records = read_spans(target, errors=errors)
        assert [record["name"] for record in records] == ["s"]
        assert len(errors) == 2

    def test_skips_blank_lines(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        with span("s"):
            pass
        shutdown_tracing()
        with open(target, "a") as handle:
            handle.write("\n")
        assert len(list(iter_spans(target))) == 1

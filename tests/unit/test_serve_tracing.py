"""Distributed-trace propagation through the serve worker stack.

The wire hop is simulated in-process (``execute_task`` with a
``traceparent`` and an ``obs_dir``, exactly what a worker process
receives), and the crash-retry path runs against the real pool.  What
these pin is the CONTRIBUTING invariant: every span a worker emits is
parented under the submitting client's trace — a retry opens a *new*
span but stays in the *same* trace.
"""

import os

import pytest

from repro.obs import context as obs_context
from repro.obs.merge import load_spans
from repro.obs.tracing import configure_tracing, shutdown_tracing, tracing_enabled
from repro.serve.pool import WorkerPool, WorkerTask, execute_task
from repro.trace.colfmt import write_colf
from repro.trace.event import write as write_event


@pytest.fixture(autouse=True)
def clean_state():
    shutdown_tracing()
    yield
    shutdown_tracing()
    token = obs_context.attach_context(None)
    obs_context.detach_context(token)


@pytest.fixture
def colf_trace(tmp_path):
    events = [write_event(1 + (i % 2), "x", eid=i) for i in range(200)]
    path = tmp_path / "t.colf"
    write_colf(events, path, segment_events=50)
    return path


def one_trace(obs_dir, ctx):
    merged = load_spans([obs_dir])
    assert merged.corrupt_lines == 0
    records = merged.for_trace(ctx.trace_id)
    assert records, f"no spans for trace {ctx.trace_id}"
    return records


class TestExecuteTaskPropagation:
    def test_worker_configures_own_per_pid_exporter(self, tmp_path, colf_trace):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        ctx = obs_context.new_context()
        task = WorkerTask(
            task_id="j1",
            trace_path=str(colf_trace),
            spec="hb",
            traceparent=ctx.to_traceparent(),
            obs_dir=str(obs_dir),
        )
        assert not tracing_enabled()
        execute_task(task)
        # The worker owned its exporter and tore it down again.
        assert not tracing_enabled()
        expected = obs_dir / f"spans-{os.getpid()}.jsonl"
        assert expected.is_file()

    def test_worker_spans_parent_under_remote_context(self, tmp_path, colf_trace):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        ctx = obs_context.new_context()
        execute_task(
            WorkerTask(
                task_id="j1",
                trace_path=str(colf_trace),
                spec="hb",
                traceparent=ctx.to_traceparent(),
                obs_dir=str(obs_dir),
            )
        )
        records = one_trace(obs_dir, ctx)
        worker = next(r for r in records if r["name"] == "worker.task")
        assert worker["psid"] == ctx.span_id
        session = next(r for r in records if r["name"] == "session.run")
        assert session["psid"] == worker["sid"]
        assert {r["trace_id"] for r in records} == {ctx.trace_id}

    def test_without_traceparent_worker_starts_fresh_trace(self, tmp_path, colf_trace):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        execute_task(
            WorkerTask(
                task_id="j1",
                trace_path=str(colf_trace),
                spec="hb",
                obs_dir=str(obs_dir),
            )
        )
        merged = load_spans([obs_dir])
        worker = next(r for r in merged.records if r["name"] == "worker.task")
        assert worker["psid"] is None
        assert worker["trace_id"]

    def test_existing_exporter_is_not_replaced(self, tmp_path, colf_trace):
        own = tmp_path / "own.jsonl"
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        configure_tracing(own)
        ctx = obs_context.new_context()
        execute_task(
            WorkerTask(
                task_id="j1",
                trace_path=str(colf_trace),
                spec="hb",
                traceparent=ctx.to_traceparent(),
                obs_dir=str(obs_dir),
            )
        )
        # Still enabled (the task must not shut down an exporter it did
        # not open), and the spans went to the caller's file.
        assert tracing_enabled()
        shutdown_tracing()
        assert not (obs_dir / f"spans-{os.getpid()}.jsonl").exists()
        names = {r["name"] for r in load_spans([own]).records}
        assert "worker.task" in names


class TestParallelSessionSpans:
    def run_task(self, colf_trace, obs_dir, parallel):
        ctx = obs_context.new_context()
        execute_task(
            WorkerTask(
                task_id=f"j-par{parallel}",
                trace_path=str(colf_trace),
                spec="hb",
                parallel=parallel,
                traceparent=ctx.to_traceparent(),
                obs_dir=str(obs_dir),
            )
        )
        return one_trace(obs_dir, ctx)

    def test_parallel_chunk_spans_parent_under_session_run(self, tmp_path, colf_trace):
        records = self.run_task(colf_trace, tmp_path, parallel=2)
        session = next(r for r in records if r["name"] == "session.run")
        scans = [r for r in records if r["name"] == "session.parallel_scan"]
        stitches = [r for r in records if r["name"] == "session.parallel_stitch"]
        chunks = [r for r in records if r["name"] == "session.parallel_chunk"]
        assert len(scans) == 2 and len(chunks) == 2 and len(stitches) == 1
        for record in scans + stitches + chunks:
            assert record["psid"] == session["sid"]
            assert record["trace_id"] == session["trace_id"]
        assert {r["attrs"]["chunk"] for r in chunks} == {0, 1}

    def test_sequential_run_has_no_chunk_spans(self, tmp_path, colf_trace):
        records = self.run_task(colf_trace, tmp_path, parallel=1)
        names = [r["name"] for r in records]
        assert "session.run" in names
        assert not any(name.startswith("session.parallel_") for name in names)


class TestPoolCrashRetryTracing:
    def test_retry_gets_new_span_same_trace(self, tmp_path, colf_trace):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        ctx = obs_context.new_context()
        pool = WorkerPool(workers=1).start()
        try:
            results = pool.run_batch(
                [
                    WorkerTask(
                        task_id="boom-once",
                        trace_path=str(colf_trace),
                        spec="hb",
                        fault="exit_once",
                        traceparent=ctx.to_traceparent(),
                        obs_dir=str(obs_dir),
                    )
                ],
                timeout=60,
            )
        finally:
            pool.terminate()
        payload, error, attempts = results["boom-once"]
        assert error is None and attempts == 2
        assert payload["events"] == 200
        records = one_trace(obs_dir, ctx)
        workers = [r for r in records if r["name"] == "worker.task"]
        # The first attempt died before tracing came up; the retry's span
        # is fresh but parented in the same trace.
        assert len(workers) == 1
        assert workers[0]["trace_id"] == ctx.trace_id
        assert workers[0]["psid"] == ctx.span_id
        assert workers[0]["sid"] != ctx.span_id

"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    instrument_key,
)
from repro.obs import metrics as obs_metrics


class TestInstrumentKey:
    def test_bare_name(self):
        assert instrument_key("a.b", {}) == "a.b"

    def test_labels_are_sorted(self):
        assert instrument_key("n", {"b": 2, "a": 1}) == "n{a=1,b=2}"

    def test_same_labels_same_key(self):
        assert instrument_key("n", {"x": 1, "y": 2}) == instrument_key("n", {"y": 2, "x": 1})


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_as_dict_shape(self):
        counter = Counter("c", {"spec": "hb+tc"})
        counter.inc(2)
        payload = counter.as_dict()
        assert payload == {
            "type": "counter",
            "name": "c",
            "value": 2,
            "labels": {"spec": "hb+tc"},
        }

    def test_thread_hammer_totals_are_exact(self):
        counter = Counter("hammer")
        threads = 8
        per_thread = 5000

        def work():
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_as_dict_shape(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        assert gauge.as_dict() == {"type": "gauge", "name": "g", "value": 2.5}


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10, 1))

    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(50)
        histogram.observe(500)  # overflow slot
        payload = histogram.as_dict()
        assert payload["counts"] == [1, 1, 1]
        assert payload["count"] == 3
        assert payload["sum_ns"] == 555
        assert payload["min_ns"] == 5
        assert payload["max_ns"] == 500
        assert payload["mean_ns"] == pytest.approx(185.0)

    def test_bucket_bounds_are_inclusive(self):
        histogram = Histogram("h", buckets=(10, 100))
        histogram.observe(10)
        assert histogram.as_dict()["counts"] == [1, 0, 0]

    def test_empty_histogram_snapshot(self):
        payload = Histogram("h").as_dict()
        assert payload["count"] == 0
        assert payload["mean_ns"] == 0.0
        assert payload["min_ns"] is None and payload["max_ns"] is None

    def test_default_buckets_are_ascending_ns_decades(self):
        assert list(DEFAULT_NS_BUCKETS) == sorted(DEFAULT_NS_BUCKETS)
        assert DEFAULT_NS_BUCKETS[0] == 1_000

    def test_thread_hammer_count_and_sum_exact(self):
        histogram = Histogram("h")
        threads, per_thread = 8, 2000

        def work():
            for value in range(per_thread):
                histogram.observe(value)

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert histogram.count == threads * per_thread
        assert histogram.sum == threads * sum(range(per_thread))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", w=1) is registry.counter("c", w=1)
        assert registry.counter("c") is not registry.counter("c", w=1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_enable_disable_chain(self):
        registry = MetricsRegistry()
        assert not registry.enabled
        assert registry.enable() is registry
        assert registry.enabled
        assert registry.disable() is registry
        assert not registry.enabled

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == []
        assert registry.counter("c").value == 0

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("jobs", worker=1).inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(123)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"jobs{worker=1}", "depth", "lat"}
        assert snapshot["jobs{worker=1}"]["value"] == 3
        assert snapshot["depth"]["value"] == 7
        assert snapshot["lat"]["count"] == 1

    def test_get_returns_registered_or_none(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", spec="hb")
        assert registry.get("c", spec="hb") is counter
        assert registry.get("missing") is None

    def test_concurrent_get_or_create_single_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(registry.counter("racy"))

        workers = [threading.Thread(target=work) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(set(map(id, seen))) == 1


class TestDefaultRegistry:
    def test_module_helpers_target_default_registry(self):
        registry = get_registry()
        was_enabled = registry.enabled
        try:
            obs_metrics.enable()
            assert obs_metrics.enabled() and registry.enabled
            obs_metrics.disable()
            assert not obs_metrics.enabled() and not registry.enabled
        finally:
            registry.enabled = was_enabled

    def test_default_registry_starts_disabled(self):
        # The process-global contract: nothing records unless opted in.
        # (Other tests must restore the flag, so this also guards leaks.)
        assert not get_registry().enabled

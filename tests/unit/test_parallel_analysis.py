"""Unit tests for the segment-parallel runner and its session surface.

The equivalence contract lives in
``tests/differential/test_parallel_differential.py``; this module pins
the *mechanics*: chunk planning, the fallback gates, the boundary edge
cases the stitch must survive (ragged final segments, a lock handed
across a chunk boundary, more workers than segments), clock seeding,
and the upfront parameter validation on :meth:`Session.run`.
"""

from __future__ import annotations

import io

import pytest

from repro.analysis.parallel import (
    PARALLEL_ORDERS,
    ParallelReport,
    _plan_chunks,
    run_parallel,
    supports_parallel,
)
from repro.api import Session
from repro.api.sources import ColfSource
from repro.api.spec import coerce_spec
from repro.clocks.base import ClockContext
from repro.clocks.tree_clock import TreeClock
from repro.clocks.vector_clock import VectorClock
from repro.trace import Trace
from repro.trace import event as ev
from repro.trace.colfmt import ColfReader, write_colf


def make_reader(events, segment_events=8):
    buffer = io.BytesIO()
    write_colf(events, buffer, segment_events=segment_events)
    return ColfReader(buffer.getvalue())


def write_container(events, tmp_path, segment_events=8):
    path = tmp_path / "trace.colf"
    with open(path, "wb") as handle:
        write_colf(events, handle, segment_events=segment_events)
    return path


def sequential_result(spec, path):
    """The sequential-walk reference, over the same container."""
    with ColfSource(path) as source:
        return Session([spec]).run(source)[spec]


def race_pairs(result):
    return [race.pair() for race in result.detection.races]


class TestChunkPlanning:
    def test_balances_event_counts(self):
        events = [ev.write(1 + (i % 3), f"x{i % 5}") for i in range(200)]
        with make_reader(events, segment_events=7) as reader:
            chunks = _plan_chunks(reader.segments, 4)
            assert len(chunks) == 4
            assert sum(chunk.events for chunk in chunks) == 200
            # Contiguous and exhaustive: chunk segments tile the container.
            indices = [seg.index for chunk in chunks for seg in chunk.segments]
            assert indices == list(range(len(reader.segments)))
            # Reasonably balanced: no chunk more than twice the even share.
            assert max(chunk.events for chunk in chunks) <= 2 * 200 / 4 + 7

    def test_workers_capped_by_segments(self):
        events = [ev.write(1, "x") for _ in range(20)]
        with make_reader(events, segment_events=8) as reader:
            assert len(reader.segments) == 3
            chunks = _plan_chunks(reader.segments, 16)
            assert len(chunks) == 3
            assert all(len(chunk.segments) == 1 for chunk in chunks)

    def test_single_worker_single_chunk(self):
        events = [ev.write(1, "x") for _ in range(20)]
        with make_reader(events, segment_events=4) as reader:
            chunks = _plan_chunks(reader.segments, 1)
            assert len(chunks) == 1
            assert chunks[0].events == 20


class TestGates:
    def test_supports_parallel(self):
        events = [ev.write(1, "x") for _ in range(20)]
        specs = [coerce_spec("hb+tc"), coerce_spec("maz+vc+detect")]
        with make_reader(events, segment_events=4) as reader:
            assert supports_parallel(specs, reader.segments)
        with make_reader(events, segment_events=64) as reader:
            # One segment: nothing to parallelize.
            assert not supports_parallel(specs, reader.segments)
        class ExoticSpec:
            order = "XO"  # a runtime-registered order the runner can't stitch

        with make_reader(events, segment_events=4) as reader:
            assert not supports_parallel([ExoticSpec()], reader.segments)
        assert PARALLEL_ORDERS == {"HB", "SHB", "MAZ"}

    def test_single_segment_falls_back_to_sequential(self, tmp_path):
        events = [ev.write(1 + (i % 2), "x") for i in range(30)]
        path = write_container(events, tmp_path, segment_events=1024)
        with ColfSource(path) as source:
            result = Session(["hb+tc+detect"]).run(source, parallel=4)
        assert result.parallel is None
        assert result.num_events == 30
        assert result.primary.detection.race_count > 0

    def test_non_colf_source_falls_back(self):
        events = [ev.write(1 + (i % 2), "x") for i in range(30)]
        result = Session(["hb+tc+detect"]).run(Trace(events, name="mem"), parallel=4)
        assert result.parallel is None
        assert result.num_events == 30


class TestBoundaryEdgeCases:
    def test_ragged_final_segment(self, tmp_path):
        """65 events over segment_events=16: a 1-event final segment."""
        events = [
            ev.write(1 + (i % 3), f"x{i % 4}") if i % 2 else ev.read(1 + (i % 3), f"x{i % 4}")
            for i in range(65)
        ]
        path = write_container(events, tmp_path, segment_events=16)
        with ColfSource(path) as source:
            assert [seg.count for seg in source.segments()] == [16, 16, 16, 16, 1]
            parallel = Session(["shb+tc+detect"]).run(source, parallel=5)
        assert parallel.parallel is not None
        sequential = sequential_result("shb+tc+detect", path)
        assert race_pairs(parallel.primary) == race_pairs(sequential)
        assert parallel.primary.detection.checks == sequential.detection.checks

    def test_lock_pair_split_across_boundary(self, tmp_path):
        """Acquire in one chunk, release in the next: the lock clock must
        carry the holder's entry state across the boundary."""
        events = []
        events.append(ev.acquire(1, "m"))
        events.append(ev.write(1, "x"))
        events.extend(ev.read(1, "pad") for _ in range(6))  # chunk boundary inside
        events.append(ev.release(1, "m"))
        events.append(ev.acquire(2, "m"))
        events.append(ev.write(2, "x"))  # ordered via m: no race
        events.append(ev.release(2, "m"))
        events.append(ev.write(3, "x"))  # unordered: races with both writes
        path = write_container(events, tmp_path, segment_events=4)
        with ColfSource(path) as source:
            assert len(source.segments()) > 2
            parallel = Session(["hb+tc+detect", "hb+vc+detect"]).run(source, parallel=4)
        assert parallel.parallel is not None
        sequential = sequential_result("hb+tc+detect", path)
        assert race_pairs(sequential) == race_pairs(parallel["hb+tc+detect"])
        assert race_pairs(sequential) == race_pairs(parallel["hb+vc+detect"])
        racing_tids = {race.event_tid for race in parallel["hb+tc+detect"].detection.races}
        assert racing_tids == {3}

    def test_fork_join_split_across_boundary(self, tmp_path):
        events = [ev.fork(1, 2)]
        events.extend(ev.write(2, "pad") for _ in range(9))
        events.append(ev.write(2, "x"))
        events.append(ev.join(1, 2))  # lands in a later chunk
        events.append(ev.write(1, "x"))  # ordered via join: no race
        events.append(ev.write(3, "x"))  # unordered: races
        path = write_container(events, tmp_path, segment_events=4)
        with ColfSource(path) as source:
            parallel = Session(["hb+tc+detect"]).run(source, parallel=4)
        assert parallel.parallel is not None
        sequential = sequential_result("hb+tc+detect", path)
        assert race_pairs(parallel.primary) == race_pairs(sequential)
        racing_tids = {race.event_tid for race in parallel.primary.detection.races}
        assert racing_tids == {3}

    def test_workers_exceed_segments(self, tmp_path):
        events = [ev.write(1 + (i % 2), "x") for i in range(24)]
        path = write_container(events, tmp_path, segment_events=8)
        with ColfSource(path) as source:
            assert len(source.segments()) == 3
            parallel = Session(["hb+tc+detect"]).run(source, parallel=64)
        report = parallel.parallel
        assert report is not None
        assert report.requested == 64
        assert report.workers == report.chunks == 3
        sequential = sequential_result("hb+tc+detect", path)
        assert race_pairs(parallel.primary) == race_pairs(sequential)

    def test_thread_first_seen_mid_trace(self, tmp_path):
        """A thread whose first event is in a late chunk still resolves."""
        events = [ev.write(1, "x") for _ in range(12)]
        events.append(ev.write(9, "x"))  # brand-new thread, final segment
        path = write_container(events, tmp_path, segment_events=4)
        with ColfSource(path) as source:
            parallel = Session(["shb+vc+detect+ts"]).run(source, parallel=3)
        sequential = sequential_result("shb+vc+detect+ts", path)
        assert race_pairs(parallel.primary) == race_pairs(sequential)
        assert parallel.primary.timestamps == sequential.timestamps


class TestRunParallelDirect:
    def test_work_counters_merge(self):
        events = [ev.write(1 + (i % 3), f"x{i % 2}") for i in range(60)]
        specs = [coerce_spec("hb+tc+work")]
        with make_reader(events, segment_events=16) as reader:
            results, report = run_parallel(
                specs, reader, reader.segments, workers=3, base_threads=reader.threads()
            )
        work = results[specs[0].key].work
        assert work is not None
        assert work.increments == 60  # one per event, exact under merging
        assert report.events == 60
        assert len(report.scan_ns) == report.chunks == len(report.replay_ns)

    def test_report_shape(self):
        report = ParallelReport(
            requested=4,
            workers=2,
            segments=5,
            chunks=2,
            events=100,
            scan_ns=[10, 30],
            stitch_ns=5,
            replay_ns=[50, 20],
        )
        assert report.critical_path_ns == 30 + 5 + 50
        assert report.total_cpu_ns == 115
        assert report.modeled_speedup(170) == 2.0
        payload = report.as_dict()
        assert payload["critical_path_ns"] == 85
        assert payload["chunks"] == 2


class TestSessionValidation:
    @pytest.mark.parametrize("kwargs", [{"batch_size": 0}, {"batch_size": -5}])
    def test_rejects_bad_batch_size(self, kwargs):
        session = Session(["hb+tc"])
        with pytest.raises(ValueError, match="batch_size"):
            session.run(Trace([ev.write(1, "x")]), **kwargs)

    @pytest.mark.parametrize("kwargs", [{"parallel": 0}, {"parallel": -1}])
    def test_rejects_bad_parallel(self, kwargs):
        session = Session(["hb+tc"])
        with pytest.raises(ValueError, match="parallel"):
            session.run(Trace([ev.write(1, "x")]), **kwargs)

    def test_session_reusable_after_rejection(self):
        """Validation fires before begin(): no half-built walk state."""
        session = Session(["hb+tc+detect"])
        events = [ev.write(1, "x"), ev.write(2, "x")]
        with pytest.raises(ValueError):
            session.run(Trace(events), parallel=0)
        assert session.analyses == {} or all(
            analysis is not None for analysis in session.analyses.values()
        )
        result = session.run(Trace(events))
        assert result.num_events == 2
        assert result.primary.detection.race_count == 1


class TestClockSeeding:
    @pytest.mark.parametrize("clock_class", [VectorClock, TreeClock])
    def test_seed_round_trips_vector_time(self, clock_class):
        context = ClockContext(threads=[1, 2, 3])
        clock = clock_class(context, owner=1)
        clock.seed_vector_time({1: 7, 2: 3}, anchor=1)
        assert clock.as_dict() == {1: 7, 2: 3}
        assert clock.get(3) == 0

    @pytest.mark.parametrize("clock_class", [VectorClock, TreeClock])
    def test_seed_registers_unknown_threads(self, clock_class):
        context = ClockContext(threads=[1])
        clock = clock_class(context, owner=1)
        clock.seed_vector_time({1: 2, 8: 5}, anchor=1)
        assert 8 in context.index_of
        assert clock.get(8) == 5

    @pytest.mark.parametrize("clock_class", [VectorClock, TreeClock])
    def test_seeded_clock_joins_like_sequential(self, clock_class):
        context = ClockContext(threads=[1, 2])
        seeded = clock_class(context, owner=1)
        seeded.seed_vector_time({1: 4, 2: 2}, anchor=1)
        other = clock_class(context, owner=2)
        other.seed_vector_time({1: 1, 2: 6}, anchor=2)
        seeded.join(other)
        assert seeded.as_dict() == {1: 4, 2: 6}

    def test_tree_clock_seed_requires_anchor_presence(self):
        context = ClockContext(threads=[1, 2])
        clock = TreeClock(context, owner=None)
        with pytest.raises(ValueError):
            clock.seed_vector_time({1: 3, 2: 1})  # anchorless auxiliary clock

"""Unit tests for the tree clock data structure (:mod:`repro.clocks.tree_clock`)."""

import pytest

from repro.clocks import ClockContext, TreeClock, WorkCounter
from repro.clocks.base import vt_join


def make_context(num_threads: int = 6, with_counter: bool = False) -> ClockContext:
    counter = WorkCounter() if with_counter else None
    return ClockContext(threads=list(range(1, num_threads + 1)), counter=counter)


class TestInitialization:
    def test_owned_clock_has_root_at_zero(self):
        clock = TreeClock(make_context(), owner=3)
        assert clock.root is not None
        assert clock.root.tid == 3
        assert clock.root.clk == 0
        assert clock.root.aclk is None
        assert clock.get(3) == 0

    def test_auxiliary_clock_starts_empty(self):
        clock = TreeClock(make_context())
        assert clock.root is None
        assert clock.node_count == 0
        assert clock.as_dict() == {}

    def test_short_name(self):
        assert TreeClock.SHORT_NAME == "TC"

    def test_validate_structure_on_fresh_clocks(self):
        assert TreeClock(make_context(), owner=1).validate_structure() == []
        assert TreeClock(make_context()).validate_structure() == []


class TestGetIncrement:
    def test_get_unknown_thread_is_zero(self):
        clock = TreeClock(make_context(), owner=1)
        assert clock.get(4) == 0

    def test_increment_root_thread(self):
        clock = TreeClock(make_context(), owner=2)
        clock.increment(2)
        clock.increment(2, 4)
        assert clock.get(2) == 5

    def test_increment_non_root_thread_raises(self):
        clock = TreeClock(make_context(), owner=2)
        with pytest.raises(ValueError):
            clock.increment(3)

    def test_increment_empty_clock_raises(self):
        clock = TreeClock(make_context())
        with pytest.raises(ValueError):
            clock.increment(1)

    def test_node_of_returns_thread_map_entry(self):
        clock = TreeClock(make_context(), owner=1)
        assert clock.node_of(1) is clock.root
        assert clock.node_of(2) is None


def build_clock(context: ClockContext, owner: int, local_time: int) -> TreeClock:
    """An owned clock advanced to the given local time."""
    clock = TreeClock(context, owner=owner)
    clock.increment(owner, local_time)
    return clock


class TestJoin:
    def test_join_learns_other_threads_entries(self):
        context = make_context()
        a = build_clock(context, 1, 5)
        b = build_clock(context, 2, 3)
        a.join(b)
        assert a.as_dict() == {1: 5, 2: 3}
        assert a.validate_structure() == []

    def test_join_matches_pointwise_maximum(self):
        context = make_context()
        a = build_clock(context, 1, 2)
        b = build_clock(context, 2, 4)
        c = build_clock(context, 3, 6)
        b.join(c)
        a.join(b)
        expected = vt_join({1: 2}, vt_join({2: 4}, {3: 6}))
        assert a.as_dict() == expected

    def test_join_keeps_root_thread(self):
        context = make_context()
        a = build_clock(context, 1, 1)
        b = build_clock(context, 2, 9)
        a.join(b)
        assert a.root.tid == 1

    def test_join_with_empty_clock_is_noop(self):
        context = make_context()
        a = build_clock(context, 1, 3)
        empty = TreeClock(context)
        a.join(empty)
        assert a.as_dict() == {1: 3}

    def test_join_into_empty_clock_copies(self):
        context = make_context()
        empty = TreeClock(context)
        b = build_clock(context, 2, 4)
        empty.join(b)
        assert empty.as_dict() == {2: 4}
        assert empty.root.tid == 2

    def test_join_early_returns_when_nothing_new(self):
        context = make_context()
        a = build_clock(context, 1, 2)
        b = build_clock(context, 2, 5)
        a.join(b)
        shape_before = a.as_dict()
        stale = TreeClock(context, owner=2)
        stale.increment(2, 3)  # older view of thread 2
        a.join(stale)
        assert a.as_dict() == shape_before

    def test_join_is_transitive_through_intermediate(self):
        context = make_context()
        c1 = build_clock(context, 1, 7)
        c2 = build_clock(context, 2, 2)
        c3 = build_clock(context, 3, 4)
        c2.join(c1)       # t2 learns t1
        c3.join(c2)       # t3 learns t1 transitively through t2
        assert c3.get(1) == 7
        assert c3.get(2) == 2

    def test_joined_subtree_sits_under_root_with_attachment_clock(self):
        context = make_context()
        a = build_clock(context, 1, 5)
        b = build_clock(context, 2, 3)
        a.join(b)
        child = a.root.first_child
        assert child.tid == 2
        assert child.clk == 3
        assert child.aclk == 5  # the root's time when the subtree was attached

    def test_children_ordered_by_descending_attachment_clock(self):
        context = make_context()
        a = build_clock(context, 1, 1)
        for other, time in ((2, 3), (3, 4), (4, 5)):
            a.increment(1, 1)
            a.join(build_clock(context, other, time))
        aclks = [child.aclk for child in a.root.children()]
        assert aclks == sorted(aclks, reverse=True)
        assert a.validate_structure() == []

    def test_join_updates_existing_entry_to_larger_value(self):
        context = make_context()
        a = build_clock(context, 1, 1)
        old = build_clock(context, 2, 2)
        new = build_clock(context, 2, 6)
        a.join(old)
        a.join(new)
        assert a.get(2) == 6
        assert a.validate_structure() == []

    def test_join_self_knowledge_is_never_decreased(self):
        context = make_context()
        a = build_clock(context, 1, 10)
        b = build_clock(context, 2, 1)
        b.join(a)
        a.increment(1, 5)
        a.join(b)
        assert a.get(1) == 15


class TestMonotoneCopy:
    def test_copy_into_empty_clock(self):
        context = make_context()
        source = build_clock(context, 1, 4)
        source.join(build_clock(context, 2, 2))
        target = TreeClock(context)
        target.monotone_copy(source)
        assert target.as_dict() == source.as_dict()
        assert target.root.tid == source.root.tid
        assert target.validate_structure() == []

    def test_copy_changes_root_thread(self):
        context = make_context()
        lock_clock = TreeClock(context)
        first = build_clock(context, 1, 2)
        lock_clock.monotone_copy(first)
        assert lock_clock.root.tid == 1
        second = build_clock(context, 2, 3)
        second.join(lock_clock)
        lock_clock.monotone_copy(second)
        assert lock_clock.root.tid == 2
        assert lock_clock.as_dict() == second.as_dict()
        assert lock_clock.validate_structure() == []

    def test_copy_of_empty_clock_is_noop(self):
        context = make_context()
        target = TreeClock(context)
        target.monotone_copy(TreeClock(context))
        assert target.as_dict() == {}

    def test_copy_preserves_untouched_entries(self):
        context = make_context()
        lock_clock = TreeClock(context)
        writer = build_clock(context, 1, 3)
        writer.join(build_clock(context, 3, 1))
        lock_clock.monotone_copy(writer)
        writer.increment(1, 1)
        lock_clock_snapshot = lock_clock.as_dict()
        assert lock_clock_snapshot == {1: 3, 3: 1}
        lock_clock.monotone_copy(writer)
        assert lock_clock.as_dict() == {1: 4, 3: 1}


class TestCopyCheckMonotone:
    def test_monotone_case_uses_sublinear_path(self):
        context = make_context(with_counter=True)
        thread_clock = build_clock(context, 1, 3)
        last_write = TreeClock(context)
        last_write.copy_check_monotone(thread_clock)
        assert last_write.as_dict() == {1: 3}

    def test_non_monotone_case_falls_back_to_deep_copy(self):
        context = make_context()
        last_write = TreeClock(context)
        first_writer = build_clock(context, 1, 5)
        last_write.copy_check_monotone(first_writer)
        # A second writer that has NOT seen the first write: not monotone.
        second_writer = build_clock(context, 2, 2)
        last_write.copy_check_monotone(second_writer)
        assert last_write.as_dict() == {2: 2}
        assert last_write.root.tid == 2
        assert last_write.validate_structure() == []

    def test_copy_from_is_an_exact_structural_copy(self):
        context = make_context()
        source = build_clock(context, 1, 3)
        source.join(build_clock(context, 2, 2))
        source.join(build_clock(context, 3, 4))
        target = TreeClock(context)
        target.copy_from(source)
        assert target.as_dict() == source.as_dict()
        assert [node.tid for node in target.nodes()] == [node.tid for node in source.nodes()]
        assert target.validate_structure() == []


class TestComparison:
    def test_leq_fast_uses_root_entry(self):
        context = make_context()
        snapshot = build_clock(context, 1, 3)
        other = build_clock(context, 2, 1)
        other.join(snapshot)
        assert snapshot.leq(other)

    def test_leq_fast_on_empty_clock_is_true(self):
        context = make_context()
        assert TreeClock(context).leq(build_clock(context, 1, 1))

    def test_leq_full_pointwise(self):
        context = make_context()
        small = build_clock(context, 1, 1)
        large = build_clock(context, 2, 1)
        large.join(small)
        assert small.leq_full(large)
        assert not large.leq_full(small)


class TestIntrospection:
    def test_depth_of_empty_and_single_node(self):
        context = make_context()
        assert TreeClock(context).depth() == 0
        assert TreeClock(context, owner=1).depth() == 1

    def test_depth_grows_with_transitive_joins(self):
        context = make_context()
        c1 = build_clock(context, 1, 1)
        c2 = build_clock(context, 2, 1)
        c3 = build_clock(context, 3, 1)
        c2.join(c1)
        c3.join(c2)
        assert c3.depth() == 3

    def test_nodes_iterates_every_entry(self):
        context = make_context()
        clock = build_clock(context, 1, 1)
        clock.join(build_clock(context, 2, 1))
        clock.join(build_clock(context, 3, 1))
        assert {node.tid for node in clock.nodes()} == {1, 2, 3}
        assert clock.node_count == 3

    def test_repr_contains_root(self):
        clock = TreeClock(make_context(), owner=1)
        assert "TreeClock" in repr(clock)

    def test_node_repr_shows_bottom_for_root(self):
        clock = TreeClock(make_context(), owner=1)
        assert "⊥" in repr(clock.root)


class TestWorkAccounting:
    def test_join_work_is_proportional_to_progress(self):
        counter = WorkCounter()
        context = ClockContext(threads=list(range(1, 20)), counter=counter)
        a = build_clock(context, 1, 1)
        b = build_clock(context, 2, 1)
        counter.reset()
        a.join(b)
        # Only one new entry was learned; far fewer than k=19 entries touched.
        assert counter.entries_updated == 1
        assert counter.entries_processed < 5

    def test_early_return_join_costs_constant(self):
        counter = WorkCounter()
        context = ClockContext(threads=list(range(1, 20)), counter=counter)
        a = build_clock(context, 1, 5)
        stale = build_clock(context, 1, 5)
        counter.reset()
        a.join(stale)
        assert counter.entries_processed <= 1
        assert counter.entries_updated == 0

    def test_empty_join_records_zero_work(self):
        counter = WorkCounter()
        context = ClockContext(threads=[1, 2], counter=counter)
        a = build_clock(context, 1, 1)
        counter.reset()
        a.join(TreeClock(context))
        assert counter.entries_processed == 0
        assert counter.entries_updated == 0

"""Regression tests: degenerate deep tree clocks must not blow the stack.

Adversarial traces (long chains of pairwise joins) produce tree clocks
whose depth is proportional to the trace length.  Every traversal in the
clock — rendering, depth, structural validation, deep copies, monotone
copies and joins — must therefore be iterative: a recursive
implementation dies with ``RecursionError`` somewhere around depth 1000
(CPython's default recursion limit).  These tests build chains far
deeper than the recursion limit — and additionally *lower* the limit, so
a reintroduced recursion fails loudly even if the chain were shortened.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

from repro.clocks import ClockContext, TreeClock, VectorClock
from repro.clocks.render import render_clock, render_tree_clock
from repro.clocks.tree_clock import TreeClockNode

DEPTH = 3000


@contextmanager
def recursion_limit(limit: int):
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def chain_clock(context: ClockContext, depth: int = DEPTH) -> TreeClock:
    """A tree clock whose tree is a single chain of ``depth`` nodes."""
    clock = TreeClock(context, owner=0)
    clock.increment(0)
    previous = clock.root
    for tid in range(1, depth):
        node = TreeClockNode(tid, 1, 1)
        clock._nodes[tid] = node
        node.parent = previous
        previous.first_child = node
        previous = node
    return clock


def deep_context(depth: int = DEPTH) -> ClockContext:
    return ClockContext(threads=list(range(depth + 1)))


def test_render_deep_chain_is_iterative():
    context = deep_context()
    clock = chain_clock(context)
    with recursion_limit(100):
        text = render_tree_clock(clock)
    lines = text.splitlines()
    assert len(lines) == DEPTH
    assert lines[0] == "(t0, clk=1, aclk=⊥)"
    assert lines[1] == "`-- (t1, clk=1, aclk=1)"
    # Each level indents by four columns under its (only) parent.
    assert lines[-1].endswith(f"(t{DEPTH - 1}, clk=1, aclk=1)")
    assert render_clock(clock) == text


def test_depth_validate_repr_and_snapshot_on_deep_chain():
    context = deep_context()
    clock = chain_clock(context)
    with recursion_limit(100):
        assert clock.depth() == DEPTH
        assert clock.validate_structure() == []
        assert "entries=3000" in repr(clock)
        snapshot = clock.as_dict()
    assert len(snapshot) == DEPTH
    assert all(value == 1 for value in snapshot.values())


def test_deep_copy_and_monotone_copy_of_deep_chain_are_iterative():
    context = deep_context()
    clock = chain_clock(context)
    copy = TreeClock(context, owner=None)
    with recursion_limit(100):
        copy.copy_from(clock)
        assert copy.as_dict() == clock.as_dict()
        assert copy.validate_structure() == []
        # A second deep copy exercises the in-place node-reuse path.
        copy.copy_from(clock)
        assert copy.as_dict() == clock.as_dict()
        monotone = TreeClock(context, owner=None)
        monotone.monotone_copy(clock)  # ∅ ⊑ chain: full pruned traversal
        assert monotone.as_dict() == clock.as_dict()
        assert monotone.validate_structure() == []


def test_join_of_deep_chain_matches_vector_clock():
    tc_context = deep_context()
    vc_context = deep_context()
    chain = chain_clock(tc_context)
    joiner = TreeClock(tc_context, owner=DEPTH)
    joiner.increment(DEPTH)
    vc_chain = VectorClock(vc_context, owner=None)
    for tid in range(DEPTH):
        vc_chain.increment(tid)
    vc_joiner = VectorClock(vc_context, owner=DEPTH)
    vc_joiner.increment(DEPTH)
    with recursion_limit(100):
        joiner.join(chain)
        vc_joiner.join(vc_chain)
        assert joiner.as_dict() == vc_joiner.as_dict()
        assert joiner.validate_structure() == []
        assert joiner.depth() == DEPTH + 1

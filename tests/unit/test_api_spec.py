"""Unit tests for the :mod:`repro.api` registry and spec layer."""

import pytest

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis, analysis_class_by_name
from repro.api import AnalysisSpec, coerce_spec, parse_spec
from repro.api.registry import CLOCKS, ORDERS, Registry, clock_class, order_class
from repro.clocks import TreeClock, VectorClock, clock_class_by_name


class TestRegistry:
    def test_seeded_orders(self):
        assert ORDERS.get("HB") is HBAnalysis
        assert ORDERS.get("shb") is SHBAnalysis
        assert ORDERS.get("Maz") is MAZAnalysis
        assert ORDERS.names() == ["HB", "MAZ", "SHB"]

    def test_seeded_clocks_and_aliases(self):
        assert CLOCKS.get("TC") is TreeClock
        assert CLOCKS.get("vc") is VectorClock
        assert CLOCKS.get("treeclock") is TreeClock
        assert CLOCKS.get("vector") is VectorClock

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown partial order"):
            ORDERS.get("CP")
        with pytest.raises(ValueError, match="unknown clock"):
            CLOCKS.get("hybrid")

    def test_contains_is_case_insensitive(self):
        assert "hb" in ORDERS and "HB" in ORDERS
        assert "nope" not in ORDERS

    def test_register_and_resolve_through_every_surface(self):
        registry = Registry("thing")

        class Thing:
            pass

        registry.register("X", Thing, aliases=("ex",))
        assert registry.get("x") is Thing
        assert registry.get("EX") is Thing
        assert registry.canonical("ex") == "X"

    def test_reregistration_is_idempotent_but_conflicts_raise(self):
        registry = Registry("thing")

        class A:
            pass

        class B:
            pass

        registry.register("X", A)
        registry.register("X", A)  # same class: fine
        with pytest.raises(ValueError, match="already registered"):
            registry.register("X", B)
        registry.register("X", B, overwrite=True)
        assert registry.get("x") is B

    def test_legacy_lookups_delegate_to_the_registry(self):
        assert analysis_class_by_name("hb") is order_class("hb")
        assert clock_class_by_name("tc") is clock_class("tc")

        class FakeOrder:
            PARTIAL_ORDER = "FAKE"

        ORDERS.register("FAKE", FakeOrder)
        try:
            assert analysis_class_by_name("fake") is FakeOrder
        finally:
            ORDERS._classes.pop("FAKE")
            ORDERS._aliases.pop("FAKE")


class TestParseSpec:
    def test_defaults(self):
        spec = parse_spec("hb")
        assert spec == AnalysisSpec()
        assert (spec.order, spec.clock, spec.detect) == ("HB", "TC", False)

    def test_full_spec(self):
        spec = parse_spec("shb+vc+detect+ts+work")
        assert spec.order == "SHB" and spec.clock == "VC"
        assert spec.detect and spec.timestamps and spec.work and spec.keep_races

    def test_flag_aliases(self):
        assert parse_spec("hb+races").detect
        assert parse_spec("hb+analysis").detect
        assert parse_spec("hb+timestamps").timestamps
        assert not parse_spec("hb+countonly").keep_races

    def test_token_order_and_case_do_not_matter(self):
        assert parse_spec("detect+VC+MAZ") == parse_spec("maz+vc+detect")

    def test_clock_only_spec_defaults_the_order(self):
        spec = parse_spec("vc")
        assert spec.order == "HB" and spec.clock == "VC"

    def test_rejects_unknown_tokens(self):
        with pytest.raises(ValueError, match="unknown spec token"):
            parse_spec("hb+warp")

    def test_unknown_token_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            parse_spec("hb+warp")
        message = str(excinfo.value)
        assert "'warp'" in message
        assert "partial orders" in message and "clocks" in message and "flags" in message
        for name in ORDERS.names():
            assert name.lower() in message
        for name in CLOCKS.names():
            assert name.lower() in message
        assert "detect" in message

    def test_rejects_duplicate_orders_and_clocks(self):
        with pytest.raises(ValueError, match="two partial orders"):
            parse_spec("hb+shb")
        with pytest.raises(ValueError, match="two clocks"):
            parse_spec("hb+tc+vc")

    def test_duplicate_error_names_both_offenders(self):
        with pytest.raises(ValueError, match="'hb' and 'shb'"):
            parse_spec("hb+shb")

    def test_rejects_empty_tokens(self):
        with pytest.raises(ValueError, match="empty token"):
            parse_spec("hb++tc")

    @pytest.mark.parametrize("malformed", ["hb+", "+hb", "++", "+", ""])
    def test_rejects_dangling_separators(self, malformed):
        with pytest.raises(ValueError, match="empty token"):
            parse_spec(malformed)

    def test_empty_token_error_explains_the_format(self):
        with pytest.raises(ValueError, match="hb\\+tc\\+detect"):
            parse_spec("hb+")

    @pytest.mark.parametrize("malformed", ["bogus", "hb+tc+bogus", "detect+nope"])
    def test_rejects_unknown_names_everywhere(self, malformed):
        with pytest.raises(ValueError, match="unknown spec token"):
            parse_spec(malformed)


class TestSpecRoundTrip:
    ALL_SPECS = [
        AnalysisSpec(order=order, clock=clock, detect=detect, timestamps=ts, work=work, keep_races=keep)
        for order in ("HB", "SHB", "MAZ")
        for clock in ("TC", "VC")
        for detect in (False, True)
        for ts in (False, True)
        for work in (False, True)
        for keep in (True, False)
    ]

    def test_key_round_trips_for_every_combination(self):
        for spec in self.ALL_SPECS:
            assert parse_spec(spec.key) == spec, spec.key

    def test_key_is_canonical_and_hashable(self):
        assert AnalysisSpec(order="hb", clock="treeclock") == AnalysisSpec(order="HB", clock="TC")
        assert len({spec.key for spec in self.ALL_SPECS}) == len(self.ALL_SPECS)

    def test_str_and_label(self):
        spec = AnalysisSpec(order="SHB", clock="VC", detect=True)
        assert str(spec) == "shb+vc+detect"
        assert spec.label == "SHB/VC"

    def test_with_updates(self):
        spec = AnalysisSpec().with_updates(detect=True, clock="VC")
        assert spec == AnalysisSpec(clock="VC", detect=True)


class TestCoerceAndBuild:
    def test_coerce_accepts_spec_and_string(self):
        spec = AnalysisSpec(order="SHB")
        assert coerce_spec(spec) is spec
        assert coerce_spec("shb") == spec

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce_spec(42)

    def test_build_wires_the_analysis(self):
        analysis = parse_spec("shb+vc+detect+work+countonly").build()
        assert isinstance(analysis, SHBAnalysis)
        assert analysis.clock_class is VectorClock
        assert analysis.detect and analysis.count_work
        assert not analysis.keep_races and not analysis.capture_timestamps

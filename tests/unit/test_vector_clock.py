"""Unit tests for the vector clock baseline (:mod:`repro.clocks.vector_clock`)."""

import pytest

from repro.clocks import ClockContext, VectorClock, WorkCounter


class TestBasics:
    def test_starts_at_zero(self, context):
        clock = VectorClock(context)
        assert all(clock.get(tid) == 0 for tid in context.threads)

    def test_get_unknown_thread_is_zero(self, context):
        clock = VectorClock(context)
        assert clock.get(999) == 0

    def test_increment(self, context):
        clock = VectorClock(context, owner=1)
        clock.increment(1)
        clock.increment(1, 3)
        assert clock.get(1) == 4

    def test_increment_unknown_thread_raises(self, context):
        clock = VectorClock(context)
        with pytest.raises(KeyError):
            clock.increment(42)

    def test_short_name(self):
        assert VectorClock.SHORT_NAME == "VC"

    def test_as_dict_skips_zero_entries(self, context):
        clock = VectorClock(context, owner=2)
        clock.increment(2, 5)
        assert clock.as_dict() == {2: 5}

    def test_as_list_follows_context_order(self, context):
        clock = VectorClock(context)
        clock.increment(3, 7)
        assert clock.as_list() == [0, 0, 7, 0, 0]

    def test_items_iterates_all_threads(self, context):
        clock = VectorClock(context)
        assert dict(clock.items()) == {tid: 0 for tid in context.threads}

    def test_repr_mentions_nonzero_entries(self, context):
        clock = VectorClock(context)
        clock.increment(1, 2)
        assert "t1:2" in repr(clock)


class TestJoinCopyCompare:
    def test_join_takes_pointwise_maximum(self, context):
        left = VectorClock(context)
        right = VectorClock(context)
        left.increment(1, 5)
        left.increment(2, 1)
        right.increment(2, 4)
        right.increment(3, 2)
        left.join(right)
        assert left.as_dict() == {1: 5, 2: 4, 3: 2}

    def test_join_is_idempotent(self, context):
        left = VectorClock(context)
        left.increment(1, 2)
        snapshot = left.as_dict()
        left.join(left)
        assert left.as_dict() == snapshot

    def test_join_does_not_modify_argument(self, context):
        left, right = VectorClock(context), VectorClock(context)
        right.increment(4, 9)
        before = right.as_dict()
        left.join(right)
        assert right.as_dict() == before

    def test_copy_from_overwrites_everything(self, context):
        left, right = VectorClock(context), VectorClock(context)
        left.increment(1, 10)
        right.increment(2, 3)
        left.copy_from(right)
        assert left.as_dict() == {2: 3}

    def test_monotone_copy_is_plain_copy(self, context):
        left, right = VectorClock(context), VectorClock(context)
        right.increment(2, 3)
        left.monotone_copy(right)
        assert left.as_dict() == right.as_dict()

    def test_copy_check_monotone_is_plain_copy(self, context):
        left, right = VectorClock(context), VectorClock(context)
        left.increment(1, 5)
        right.increment(2, 3)
        left.copy_check_monotone(right)
        assert left.as_dict() == {2: 3}

    def test_leq_pointwise(self, context):
        left, right = VectorClock(context), VectorClock(context)
        left.increment(1, 1)
        right.increment(1, 2)
        right.increment(2, 1)
        assert left.leq(right)
        assert not right.leq(left)

    def test_leq_reflexive(self, context):
        clock = VectorClock(context)
        clock.increment(1, 4)
        assert clock.leq(clock)


class TestWorkAccounting:
    def test_join_counts_k_processed_entries(self):
        counter = WorkCounter()
        context = ClockContext(threads=[1, 2, 3, 4], counter=counter)
        left, right = VectorClock(context), VectorClock(context)
        right.increment(2, 1)
        counter.reset()
        left.join(right)
        assert counter.entries_processed == 4
        assert counter.entries_updated == 1
        assert counter.joins == 1

    def test_copy_counts_k_processed_entries(self):
        counter = WorkCounter()
        context = ClockContext(threads=[1, 2, 3], counter=counter)
        left, right = VectorClock(context), VectorClock(context)
        right.increment(1, 1)
        right.increment(2, 2)
        counter.reset()
        left.copy_from(right)
        assert counter.entries_processed == 3
        assert counter.entries_updated == 2
        assert counter.copies == 1

    def test_increment_counts_one_update(self):
        counter = WorkCounter()
        context = ClockContext(threads=[1, 2], counter=counter)
        clock = VectorClock(context)
        clock.increment(1)
        assert counter.increments == 1
        assert counter.entries_updated == 1

    def test_no_counter_means_no_accounting(self, context):
        clock = VectorClock(context)
        clock.increment(1)
        assert context.counter is None

"""Unit tests of :mod:`repro.recovery`: journal, snapshots, quarantine.

The durability contract under test is *atomic or detectable*: journal
appends are single-line ``os.write`` calls whose only possible tear is
the final line (skipped by the lenient reader), and snapshot/quarantine
documents go through tmp + ``os.replace`` so a reader only ever sees a
complete file.  The torn-write helpers of :mod:`repro.faults` model the
crashes.
"""

import json

import pytest

from repro.faults import append_garbage, tear_tail
from repro.recovery import (
    JOURNAL_SCHEMA,
    JobJournal,
    QuarantineStore,
    SnapshotError,
    iter_journal,
    read_journal,
    read_snapshot,
    replay_journal,
    snapshot_path_for_stream,
    write_snapshot,
)


class TestJobJournal:
    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("submit", "j1", digest="d1", spec="hb+tc", trace="t")
            journal.record("dispatch", "j1", digest="d1", spec="hb+tc")
            journal.record("complete", "j1")
        records = read_journal(path, strict=True)
        assert [r["event"] for r in records] == ["submit", "dispatch", "complete"]
        assert all(r["schema"] == JOURNAL_SCHEMA for r in records)
        assert records[0]["digest"] == "d1" and records[0]["unix"] > 0

    def test_record_after_close_is_a_noop(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.record("submit", "j1", digest="d", spec="s", trace="t")
        journal.close()
        journal.record("complete", "j1")
        assert len(read_journal(journal.path)) == 1

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == []

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("submit", "j1", digest="d", spec="s", trace="t")
            journal.record("submit", "j2", digest="d", spec="s2", trace="t")
        tear_tail(path, drop_bytes=7)  # crash mid-append of the last line
        errors = []
        records = read_journal(path, errors=errors)
        assert [r["job_id"] for r in records] == ["j1"]
        assert len(errors) == 1 and "not valid JSON" in errors[0]

    def test_garbage_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("submit", "j1", digest="d", spec="s", trace="t")
        append_garbage(path)  # unterminated JSON tail
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n" + json.dumps({"schema": "other/1", "x": 1}) + "\n\n")
        records = read_journal(path)
        assert [r["job_id"] for r in records] == ["j1"]
        with pytest.raises(ValueError):
            list(iter_journal(path, strict=True))

    def test_replay_folds_lifecycles_and_flags_orphans(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.record("submit", "done", digest="d1", spec="a", trace="t1")
            journal.record("submit", "queued", digest="d1", spec="b", trace="t1")
            journal.record("submit", "running", digest="d2", spec="a", trace="t2")
            journal.record("dispatch", "done", digest="d1", spec="a")
            journal.record("dispatch", "running", digest="d2", spec="a")
            journal.record("complete", "done")
            journal.record("submit", "poison", digest="d2", spec="c", trace="t2")
            journal.record("quarantine", "poison", error="worker crashed", attempts=3)
        jobs = replay_journal(read_journal(path))
        assert set(jobs) == {"done", "queued", "running", "poison"}
        assert not jobs["done"].orphaned and not jobs["poison"].orphaned
        assert jobs["queued"].orphaned and jobs["running"].orphaned
        # identity carried from the submit line across later transitions
        assert jobs["running"].digest == "d2" and jobs["running"].spec == "a"
        assert jobs["running"].trace_name == "t2"
        assert jobs["poison"].error == "worker crashed"
        assert jobs["done"].events == ["submit", "dispatch", "complete"]


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, {"events": 42, "name": "s"})
        assert read_snapshot(path) == {"events": 42, "name": "s"}

    def test_rewrite_is_atomic_or_previous(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, {"events": 1})
        write_snapshot(path, {"events": 2})
        assert read_snapshot(path)["events"] == 2
        assert not path.with_name(path.name + ".tmp").exists()

    def test_missing_torn_and_foreign_snapshots_are_detectable(self, tmp_path):
        path = tmp_path / "snap.json"
        with pytest.raises(SnapshotError):
            read_snapshot(path)
        write_snapshot(path, {"events": 3})
        tear_tail(path, drop_bytes=5)
        with pytest.raises(SnapshotError):
            read_snapshot(path)
        path.write_text(json.dumps({"schema": "other/9", "payload": {}}))
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_stream_snapshot_paths_are_stable_and_safe(self, tmp_path):
        first = snapshot_path_for_stream(tmp_path, "../weird/../name with spaces")
        again = snapshot_path_for_stream(tmp_path, "../weird/../name with spaces")
        other = snapshot_path_for_stream(tmp_path, "other")
        assert first == again and first != other
        assert first.parent == tmp_path and first.name.startswith("stream-")


class TestQuarantineStore:
    def test_add_remove_and_introspection(self, tmp_path):
        store = QuarantineStore(tmp_path / "q.json")
        store.add(
            "j1", digest="d", spec="hb+tc", trace_name="t", error="worker crashed", attempts=3
        )
        assert "j1" in store and len(store) == 1
        assert store.get("j1")["error"] == "worker crashed"
        assert [entry["job_id"] for entry in store.all()] == ["j1"]
        assert store.remove("j1") is True
        assert store.remove("j1") is False
        assert "j1" not in store and len(store) == 0

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "q.json"
        QuarantineStore(path).add(
            "j1", digest="d", spec="s", trace_name="t", error="boom", attempts=2
        )
        reloaded = QuarantineStore(path)
        assert "j1" in reloaded and reloaded.get("j1")["attempts"] == 2

    def test_corrupt_or_foreign_file_starts_empty(self, tmp_path):
        path = tmp_path / "q.json"
        path.write_text('{"torn')
        assert len(QuarantineStore(path)) == 0
        path.write_text(json.dumps({"schema": "other/1", "jobs": {"x": {}}}))
        assert len(QuarantineStore(path)) == 0

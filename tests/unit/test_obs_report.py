"""Timeline reconstruction, span merging, and the ``repro obs`` CLI.

Synthetic record sets (hand-built dicts, no live tracing needed) pin the
reconstruction semantics: re-nesting on sid/psid, phase classification
with topmost-only totals, the dispatch gap computed from the
queue-wait/worker-task bracket, and the critical path reported as a wall
extent (nested spans must not double-count).
"""

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.merge import find_span_files, load_spans
from repro.obs.report import (
    PHASES,
    build_timeline,
    build_tree,
    critical_path,
    format_ns,
    phase_of,
    render_gantt,
    to_chrome_trace,
)
from repro.obs.tracing import SCHEMA, configure_tracing, shutdown_tracing, span


@pytest.fixture(autouse=True)
def clean_tracing_state():
    shutdown_tracing()
    yield
    shutdown_tracing()


TRACE = "ab" * 16


def record(name, sid, psid, start, end, *, pid=1, attrs=None, unix_base=1_000_000_000):
    return {
        "schema": SCHEMA,
        "name": name,
        "trace_id": TRACE,
        "sid": sid,
        "psid": psid,
        "start_ns": start,
        "end_ns": end,
        "dur_ns": end - start,
        "start_unix_ns": unix_base + start,
        "pid": pid,
        "thread": 1,
        "attrs": attrs or {},
    }


def job_records():
    """A miniature distributed job: client → op → queue/worker → session."""
    return [
        record("client.submit", "c1", None, 0, 1000),
        record("serve.op.submit", "s1", "c1", 50, 950),
        record("job.queue_wait", "q1", "s1", 100, 300, attrs={"job": "t#hb"}),
        record("worker.task", "w1", "s1", 400, 900, pid=2, attrs={"job": "t#hb"}),
        record("session.run", "r1", "w1", 420, 880, pid=2),
        record("session.parallel_scan", "p1", "r1", 430, 500, pid=2),
        record("session.parallel_stitch", "st1", "r1", 500, 520, pid=2),
        record("session.parallel_chunk", "ch1", "r1", 520, 870, pid=2),
        record("job.persist", "pe1", "s1", 900, 940),
    ]


class TestPhases:
    def test_span_names_classify(self):
        assert phase_of("client.submit") == "submit"
        assert phase_of("serve.op.submit") == "submit"
        assert phase_of("job.queue_wait") == "queue"
        assert phase_of("worker.task") == "analyze"
        assert phase_of("session.parallel_scan") == "scan"
        assert phase_of("session.parallel_stitch") == "stitch"
        assert phase_of("session.parallel_chunk") == "replay"
        assert phase_of("session.run") == "analyze"
        assert phase_of("job.persist") == "persist"
        assert phase_of("something.else") is None

    def test_phase_order_covers_the_lifecycle(self):
        assert PHASES[0] == "submit"
        assert "dispatch" in PHASES and "queue" in PHASES


class TestTree:
    def test_renests_on_sid_psid(self):
        roots = build_tree(job_records())
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "client.submit" and root.depth == 0
        op = root.children[0]
        assert op.name == "serve.op.submit"
        assert [c.name for c in op.children] == [
            "job.queue_wait",
            "worker.task",
            "job.persist",
        ]
        worker = op.children[1]
        assert worker.children[0].name == "session.run"
        assert worker.children[0].depth == 3

    def test_missing_parent_becomes_root(self):
        records = [
            record("worker.task", "w1", "gone", 10, 20),
            record("session.run", "r1", "w1", 12, 18),
        ]
        roots = build_tree(records)
        assert [r.name for r in roots] == ["worker.task"]
        assert roots[0].children[0].name == "session.run"

    def test_critical_path_follows_latest_finishing_subtree(self):
        records = job_records()
        chain = critical_path(build_tree(records))
        assert [n.name for n in chain] == [
            "client.submit",
            "serve.op.submit",
            "job.persist",
        ]


class TestTimeline:
    def test_phase_totals_count_topmost_spans_only(self):
        timeline = build_timeline(TRACE, job_records())
        phases = timeline.phase_totals_ns
        # client.submit (1000) only; the nested serve.op.submit is the
        # same submit, not a second one.
        assert phases["submit"] == 1000
        # worker.task (500) only; session.run nests inside it.
        assert phases["analyze"] == 500
        assert phases["queue"] == 200
        assert phases["scan"] == 70
        assert phases["stitch"] == 20
        assert phases["replay"] == 350
        assert phases["persist"] == 40

    def test_dispatch_gap_is_queue_end_to_task_start(self):
        timeline = build_timeline(TRACE, job_records())
        assert timeline.dispatch_gap_ns == 100  # 400 - 300
        assert timeline.phase_totals_ns["dispatch"] == 100

    def test_critical_path_ns_is_wall_extent_not_sum(self):
        timeline = build_timeline(TRACE, job_records())
        payload = timeline.as_dict()
        assert payload["critical_path_ns"] <= payload["wall_ns"]
        assert payload["critical_path_ns"] == 1000  # root start → persist end is inside root

    def test_as_dict_shape(self):
        payload = build_timeline(TRACE, job_records()).as_dict()
        assert payload["schema"] == "repro-obs-timeline/1"
        assert payload["trace_id"] == TRACE
        assert payload["spans"] == 9
        assert payload["pids"] == [1, 2]
        assert set(payload["phases_ns"]) == set(PHASES)
        assert payload["tree"][0]["name"] == "client.submit"
        assert [hop["name"] for hop in payload["critical_path"]][0] == "client.submit"
        json.dumps(payload)

    def test_render_gantt_lists_every_span_and_phase(self):
        text = render_gantt(build_timeline(TRACE, job_records()))
        for name in ("client.submit", "worker.task", "session.parallel_chunk"):
            assert name in text
        for phase in ("submit", "queue", "dispatch", "analyze", "persist"):
            assert phase in text
        assert "critical path" in text

    def test_format_ns(self):
        assert format_ns(500) == "500ns"
        assert format_ns(1500) == "1.5µs"
        assert format_ns(2_500_000) == "2.5ms"
        assert format_ns(3_200_000_000) == "3.20s"


class TestChromeExport:
    def test_events_are_valid_and_complete(self):
        payload = to_chrome_trace(job_records())
        json.dumps(payload)
        events = payload["traceEvents"]
        assert len(events) == 9
        assert all(event["ph"] == "X" for event in events)
        submit = next(e for e in events if e["name"] == "client.submit")
        assert submit["cat"] == "submit"
        assert submit["args"]["trace_id"] == TRACE
        # µs timestamps derived from the unix stamp.
        assert submit["ts"] == pytest.approx(1_000_000_000 / 1000.0)
        assert submit["dur"] == pytest.approx(1.0)


class TestMerge:
    def _write_spans(self, path, names):
        configure_tracing(path)
        for name in names:
            with span(name):
                pass
        shutdown_tracing()

    def test_merges_directory_recursively_and_counts_corruption(self, tmp_path):
        obs_dir = tmp_path / "obs"
        (obs_dir / "job").mkdir(parents=True)
        self._write_spans(obs_dir / "spans-server.jsonl", ["serve.op.submit"])
        self._write_spans(obs_dir / "job" / "spans-123.jsonl", ["worker.task"])
        with open(obs_dir / "spans-server.jsonl", "a") as handle:
            handle.write("torn line from a crashed writer\n")
        merged = load_spans([obs_dir])
        assert len(merged.files) == 2
        assert merged.corrupt_lines == 1
        assert {r["name"] for r in merged.records} == {"serve.op.submit", "worker.task"}

    def test_trace_filter_and_ordering(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        with span("a"):
            with span("b"):
                pass
        shutdown_tracing()
        merged = load_spans([target])
        trace_id = merged.trace_ids[0]
        picked = merged.for_trace(trace_id)
        assert [r["name"] for r in picked] == ["a", "b"]
        assert load_spans([target], trace_id="nope").records == []

    def test_legacy_records_get_synthetic_ids(self, tmp_path):
        target = tmp_path / "legacy.jsonl"
        target.write_text(
            json.dumps(
                {
                    "schema": SCHEMA,
                    "name": "old",
                    "span_id": 1,
                    "parent_id": None,
                    "start_ns": 0,
                    "end_ns": 10,
                    "dur_ns": 10,
                    "pid": 42,
                    "thread": 1,
                    "attrs": {},
                }
            )
            + "\n"
        )
        merged = load_spans([target])
        assert merged.records[0]["sid"] == "legacy-42-1"
        assert merged.records[0]["psid"] is None
        assert merged.records[0]["trace_id"] == ""

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            find_span_files([tmp_path / "nope"])


class TestObsCli:
    @pytest.fixture()
    def span_file(self, tmp_path):
        target = tmp_path / "spans.jsonl"
        configure_tracing(target)
        with span("client.submit", trace="t"):
            with span("serve.op.submit", op="submit"):
                pass
        shutdown_tracing()
        return target

    def test_timeline_renders(self, span_file, capsys):
        assert obs_main(["timeline", str(span_file)]) == 0
        out = capsys.readouterr().out
        assert "client.submit" in out and "phases:" in out

    def test_timeline_json(self, span_file, capsys):
        assert obs_main(["timeline", str(span_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-obs-timeline/1"
        assert payload["spans"] == 2

    def test_export_chrome_trace(self, span_file, tmp_path, capsys):
        out_path = tmp_path / "job.trace.json"
        assert obs_main(["export", str(span_file), "--chrome-trace", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["traceEvents"]) == 2

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert obs_main(["timeline", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_traced_spans_exits_1(self, tmp_path, capsys):
        target = tmp_path / "empty.jsonl"
        target.write_text("")
        assert obs_main(["timeline", str(target)]) == 1

    def test_repro_cli_routes_obs(self, span_file, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["obs", "timeline", str(span_file)]) == 0
        assert "client.submit" in capsys.readouterr().out

"""Unit tests of :mod:`repro.trace.colfmt` — the ``repro-trace/1`` container.

Three concerns:

* **Writer/reader mechanics** — round trips, segmentation, interning,
  eid canonicalization, empty traces, in-memory and file-backed
  containers, the mmap lifecycle.
* **Corruption hardening** — every malformed input (torn tail, bad
  magic, unknown version, truncated footer, out-of-range table
  indexes, text-mode handles) must raise a clean
  :class:`~repro.trace.io.TraceFormatError` naming a byte offset —
  never a bare ``struct.error`` / ``IndexError`` traceback.
* **Layout pinning** — a golden base64 container written by the v1
  writer is embedded below; it must keep decoding forever.  If a
  layout change breaks it, bump ``COLF_VERSION`` and add a back-compat
  reader path instead of editing the blob (see CONTRIBUTING).
"""

from __future__ import annotations

import base64
import io
import struct

import pytest

from repro.trace import event as ev
from repro.trace.colfmt import (
    COLF_MAGIC,
    COLF_VERSION,
    ColfReader,
    ColfWriter,
    is_colf_prefix,
    iter_colf_batches,
    read_colf_events,
    write_colf,
)
from repro.trace.io import TraceFormatError
from util_traces import make_random_trace


def canonical(events):
    """The events with writer-assigned consecutive ordinals."""
    return [event._replace(eid=index) for index, event in enumerate(events)]


def small_events():
    return [
        ev.begin(1),
        ev.fork(1, 2),
        ev.write(1, "x"),
        ev.acquire(2, "l"),
        ev.read(2, "x"),
        ev.release(2, "l"),
        ev.join(1, 2),
        ev.end(1),
    ]


def pack_bytes(events, segment_events=65536):
    buffer = io.BytesIO()
    write_colf(events, buffer, segment_events=segment_events)
    return buffer.getvalue()


class TestRoundTrip:
    def test_round_trip_all_kinds(self):
        events = small_events()
        assert read_colf_events(pack_bytes(events)) == canonical(events)

    def test_round_trip_random_trace_file(self, tmp_path):
        trace = make_random_trace(seed=7, num_events=500, include_fork_join=True)
        path = tmp_path / "t.colf"
        count = write_colf(iter(trace), path)
        assert count == len(trace)
        assert read_colf_events(path) == list(trace)

    def test_eids_are_canonicalized(self):
        events = [ev.write(1, "x", eid=99), ev.read(2, "x", eid=-5)]
        got = read_colf_events(pack_bytes(events))
        assert [event.eid for event in got] == [0, 1]

    def test_empty_trace_is_a_valid_container(self):
        blob = pack_bytes([])
        assert read_colf_events(blob) == []
        with ColfReader(blob) as reader:
            assert len(reader) == 0
            assert reader.segments == ()
            assert reader.threads() == ()

    def test_segmentation_boundaries(self):
        events = [ev.write(1, f"v{index % 5}") for index in range(10)]
        with ColfReader(pack_bytes(events, segment_events=4)) as reader:
            assert [segment.count for segment in reader.segments] == [4, 4, 2]
            assert [segment.first_eid for segment in reader.segments] == [0, 4, 8]
            assert [segment.last_eid for segment in reader.segments] == [3, 7, 9]

    def test_segment_sliced_decode_equals_whole_file(self):
        events = [ev.write(index % 3 + 1, f"v{index % 7}") for index in range(25)]
        with ColfReader(pack_bytes(events, segment_events=6)) as reader:
            whole = list(reader.iter_events())
            sliced = [event for segment in reader.segments for event in segment.events()]
        assert sliced == whole == canonical(events)

    def test_iter_batches_resliced(self):
        events = [ev.read(1, "x") for _ in range(20)]
        blob = pack_bytes(events, segment_events=8)
        batches = list(iter_colf_batches(blob, batch_size=3))
        assert [event for batch in batches for event in batch] == canonical(events)
        assert all(len(batch) <= 3 for batch in batches)

    def test_threads_known_upfront_and_sorted(self):
        events = [ev.write(5, "x"), ev.write(2, "x"), ev.write(9, "x")]
        with ColfReader(pack_bytes(events)) as reader:
            assert reader.threads() == (2, 5, 9)

    def test_string_interning_shares_pool_entries(self):
        events = [ev.write(1, "hot") for _ in range(1000)]
        blob = pack_bytes(events)
        # 1000 repeats of the same variable must store the string once.
        assert blob.count(b"hot") == 1

    def test_write_batch_equals_write(self):
        events = small_events()
        one = io.BytesIO()
        with ColfWriter(one) as writer:
            for event in events:
                writer.write(event)
        many = io.BytesIO()
        with ColfWriter(many) as writer:
            writer.write_batch(events)
        assert one.getvalue() == many.getvalue()

    def test_describe_payload(self):
        events = small_events()
        with ColfReader(pack_bytes(events, segment_events=3)) as reader:
            payload = reader.describe()
        assert payload["format"] == f"repro-trace/{COLF_VERSION}"
        assert payload["events"] == len(events)
        assert sorted(payload["threads"]) == [1, 2]
        assert set(payload["strings"]) == {"x", "l"}
        assert len(payload["segments"]) == 3

    def test_is_colf_prefix(self):
        assert is_colf_prefix(pack_bytes([]))
        assert is_colf_prefix(COLF_MAGIC)
        assert not is_colf_prefix(b"eid,tid,kind,target")
        assert not is_colf_prefix(b"")


class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.colf"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match=r"truncated colf file \(0 bytes"):
            ColfReader(path)

    def test_bad_magic(self):
        blob = b"NOTCOLF!" + pack_bytes(small_events())[8:]
        with pytest.raises(TraceFormatError, match=r"bad magic .* at byte offset 0"):
            ColfReader(blob)

    def test_unknown_version(self):
        blob = bytearray(pack_bytes(small_events()))
        struct.pack_into("<I", blob, 8, 99)
        with pytest.raises(
            TraceFormatError, match=r"unsupported colf version 99 at byte offset 8"
        ):
            ColfReader(bytes(blob))

    def test_torn_tail(self):
        blob = pack_bytes(small_events())
        with pytest.raises(TraceFormatError, match=r"truncated|torn tail"):
            ColfReader(blob[:-5])

    def test_truncated_mid_columns(self):
        blob = pack_bytes(small_events())
        with pytest.raises(TraceFormatError, match=r"truncated|torn tail|byte offset"):
            ColfReader(blob[: len(blob) // 2])

    def test_footer_checksum_mismatch(self):
        blob = bytearray(pack_bytes(small_events()))
        # Flip one byte inside the footer (between columns and trailer).
        footer_offset = struct.unpack_from("<Q", blob, len(blob) - 20)[0]
        blob[footer_offset] ^= 0xFF
        with pytest.raises(TraceFormatError, match=r"footer checksum mismatch"):
            ColfReader(bytes(blob))

    def test_out_of_range_thread_index(self):
        events = [ev.write(1, "x"), ev.write(1, "x")]
        blob = bytearray(pack_bytes(events))
        # Column layout per segment: kinds (n bytes), then tid cells (n u32).
        # Patch event 1's tid cell (header is 16 bytes, kinds are 2 bytes).
        struct.pack_into("<I", blob, 16 + 2 + 4, 7_000)
        # The footer CRC only covers the footer, so the column patch is
        # caught by the bounds check, with the exact cell offset named.
        with pytest.raises(
            TraceFormatError,
            match=r"thread-table index 7000 \(table has 1 entries\) at byte offset 22",
        ):
            read_colf_events(bytes(blob))

    def test_out_of_range_target_index(self):
        events = [ev.write(1, "x"), ev.write(1, "x")]
        blob = bytearray(pack_bytes(events))
        # Target cells start after kinds (2 bytes) + tid cells (8 bytes).
        struct.pack_into("<I", blob, 16 + 2 + 8 + 4, 12_345)
        with pytest.raises(
            TraceFormatError, match=r"target-pool index 12345 .* at byte offset 30"
        ):
            read_colf_events(bytes(blob))

    def test_unknown_op_kind_code(self):
        events = [ev.write(1, "x")]
        blob = bytearray(pack_bytes(events))
        blob[16] = 250  # the single kind code
        with pytest.raises(
            TraceFormatError, match=r"unknown op-kind code 250 at byte offset 16"
        ):
            read_colf_events(bytes(blob))

    def test_text_mode_handle_rejected(self, tmp_path):
        path = tmp_path / "t.colf"
        write_colf(small_events(), path)
        with open(path, "r", errors="replace") as handle:
            with pytest.raises(TraceFormatError, match=r"binary.*'rb' mode"):
                ColfReader(handle)

    def test_closed_writer_rejects_writes(self):
        writer = ColfWriter(io.BytesIO())
        writer.close()
        with pytest.raises(ValueError, match="closed ColfWriter"):
            writer.write(ev.write(1, "x"))

    def test_abandoned_writer_file_is_rejected(self, tmp_path):
        path = tmp_path / "abandoned.colf"
        writer = ColfWriter(path)
        writer.write_batch(small_events())
        writer._handle.flush()
        writer._handle.close()  # never close()d: no footer, no trailer
        with pytest.raises(TraceFormatError):
            ColfReader(path)


#: A v1 container (8 events, segment_events=3) written by the original
#: writer.  Pins the on-disk layout: header, interning order, column
#: packing, footer tables, CRC and trailer, byte for byte.
GOLDEN_V1_BASE64 = (
    "rlJQVFJDMQoBAAAAAAAAAAYEAQAAAAAAAAAAAAAAAAAAAAABAAAAAgAAAAIAAwEAAAABAAAAAQ"
    "AAAAMAAAACAAAAAwAAAAUHAAAAAAAAAAABAAAAAAAAAAIAAAABAAAAAAAAAAIAAAAAAAAABAAA"
    "AAACAQAAAAEBAAAAeAEBAAAAbAMAAAAQAAAAAAAAAAMAAAAAAAAAAAAAAAIAAAAAAAAAKwAAAA"
    "AAAAADAAAAAwAAAAAAAAAFAAAAAAAAAEYAAAAAAAAAAgAAAAYAAAAAAAAABwAAAAAAAABYAAAA"
    "AAAAAD4k8tCuUlBUUkMxCg=="
)


class TestGoldenLayout:
    def test_golden_v1_container_still_decodes(self):
        blob = base64.b64decode(GOLDEN_V1_BASE64)
        assert read_colf_events(blob) == canonical(small_events())

    def test_current_writer_reproduces_golden_bytes(self):
        # Byte-identical output is stronger than "still decodes": any
        # layout drift (even one that decodes compatibly) must be a
        # deliberate, version-bumped change.
        assert pack_bytes(small_events(), segment_events=3) == base64.b64decode(
            GOLDEN_V1_BASE64
        )


class TestReaderResourceLifecycle:
    """Error-path regression tests: a failing reader must never leak its
    file handle or let dangling column views mask the real error."""

    def _opened_handles(self, monkeypatch):
        import builtins

        handles = []
        real_open = builtins.open

        def tracking_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            handles.append(handle)
            return handle

        monkeypatch.setattr(builtins, "open", tracking_open)
        return handles

    def test_mmap_failure_closes_file(self, tmp_path, monkeypatch):
        import mmap as mmap_module

        path = tmp_path / "t.colf"
        path.write_bytes(pack_bytes(small_events()))
        handles = self._opened_handles(monkeypatch)

        def failing_mmap(*args, **kwargs):
            raise OSError("mmap unsupported on this filesystem")

        monkeypatch.setattr(mmap_module, "mmap", failing_mmap)
        with pytest.raises(OSError, match="mmap unsupported"):
            ColfReader(path)
        assert len(handles) == 1 and handles[0].closed

    def test_corrupt_file_closes_handle_and_raises_cleanly(self, tmp_path, monkeypatch):
        blob = bytearray(pack_bytes(small_events()))
        blob[-9] ^= 0xFF  # flip a footer-CRC byte
        path = tmp_path / "corrupt.colf"
        path.write_bytes(bytes(blob))
        handles = self._opened_handles(monkeypatch)
        with pytest.raises(TraceFormatError, match="checksum mismatch"):
            ColfReader(path)
        assert len(handles) == 1 and handles[0].closed

    def test_close_tolerates_exported_column_views(self, tmp_path, monkeypatch):
        path = tmp_path / "t.colf"
        path.write_bytes(pack_bytes(small_events(), segment_events=3))
        handles = self._opened_handles(monkeypatch)
        reader = ColfReader(path)
        view = reader.segments[0].kind_codes  # pins the mapped buffer
        reader.close()  # must not raise BufferError...
        assert handles[-1].closed  # ...and must still close the file
        reader.close()  # idempotent
        assert view[0] is not None  # the exported view stays readable

    def test_truncated_footer_then_close_is_clean(self, tmp_path):
        # A mid-footer TraceFormatError keeps cursor sub-views in the
        # traceback; the reader copies the footer to bytes so close()
        # (run by __init__'s error path) still releases the mmap.
        blob = bytearray(pack_bytes(small_events()))
        struct.pack_into("<I", blob, len(blob) - 16, 2**31)  # absurd footer offset
        path = tmp_path / "trunc.colf"
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError):
            ColfReader(path)

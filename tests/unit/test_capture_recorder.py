"""Unit tests for :mod:`repro.capture.recorder`.

The multithreaded tests force interleavings with a turnstile (threads
take strictly alternating turns), so every assertion is deterministic.
"""

import threading

import pytest

from repro.capture import TraceRecorder, activation, current_recorder
from repro.trace import OpKind


class Turnstile:
    """Serialize threads into an explicit global order of turns."""

    def __init__(self):
        self._cond = threading.Condition()
        self._turn = 0

    def run(self, index, action):
        with self._cond:
            self._cond.wait_for(lambda: self._turn == index, timeout=30)
            assert self._turn == index, "turnstile timed out"
            action()
            self._turn += 1
            self._cond.notify_all()


def run_threads(*targets):
    threads = [threading.Thread(target=target) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestThreadIds:
    def test_creating_thread_registers_lazily_as_t0(self):
        recorder = TraceRecorder()
        assert recorder.current_tid() == 0
        assert recorder.current_tid() == 0  # stable
        assert recorder.num_threads == 1

    def test_allocate_and_adopt(self):
        recorder = TraceRecorder()
        recorder.current_tid()
        child_tid = recorder.allocate_tid()
        assert child_tid == 1

        seen = []

        def child():
            recorder.adopt(child_tid)
            seen.append(recorder.current_tid())

        run_threads(child)
        assert seen == [child_tid]

    def test_unadopted_threads_get_fresh_dense_ids(self):
        recorder = TraceRecorder()
        recorder.current_tid()
        seen = []
        lock = threading.Lock()

        def worker():
            with lock:
                seen.append(recorder.current_tid())

        run_threads(worker, worker, worker)
        assert sorted(seen) == [1, 2, 3]


class TestRecordingAndMerge:
    def test_events_merge_in_stamp_order_across_buffers(self):
        recorder = TraceRecorder(name="merge")
        turnstile = Turnstile()

        def writer(index_pairs, variable):
            for index in index_pairs:
                turnstile.run(index, lambda: recorder.record(OpKind.WRITE, variable))

        # Interleave t-even and t-odd turns: a, b, a, b, a, b.
        run_threads(lambda: writer((0, 2, 4), "a"), lambda: writer((1, 3, 5), "b"))

        trace = recorder.trace()
        assert [event.target for event in trace] == ["a", "b", "a", "b", "a", "b"]
        assert trace.name == "merge"
        assert len(recorder) == 6
        # Two distinct recording threads, dense ids.
        assert sorted(trace.threads) in ([0, 1], [1, 2])

    def test_trace_eids_are_positions(self):
        recorder = TraceRecorder()
        for _ in range(5):
            recorder.record(OpKind.WRITE, "x")
        trace = recorder.trace()
        assert [event.eid for event in trace] == [0, 1, 2, 3, 4]

    def test_locations_align_with_events(self):
        recorder = TraceRecorder(record_locations=True)
        recorder.record(OpKind.WRITE, "x")
        recorder.record(OpKind.READ, "x", location="explicit.py:1")
        locations = recorder.locations()
        assert len(locations) == 2
        assert locations[0] is not None
        assert "test_capture_recorder.py" in locations[0]
        assert locations[1] == "explicit.py:1"

    def test_locations_off_by_default(self):
        recorder = TraceRecorder()
        recorder.record(OpKind.WRITE, "x")
        assert recorder.locations() == [None]


class TestSubscribers:
    def test_subscriber_sees_the_exact_merged_order(self):
        recorder = TraceRecorder()
        delivered = []
        recorder.subscribe(lambda seq, tid, kind, target, loc: delivered.append((seq, target)))
        turnstile = Turnstile()

        def worker(indices, variable):
            for index in indices:
                turnstile.run(index, lambda: recorder.record(OpKind.WRITE, variable))

        run_threads(lambda: worker((0, 3), "a"), lambda: worker((1, 2), "b"))

        merged = [(entry[0], entry[3]) for entry in recorder.raw_events()]
        assert delivered == merged
        assert [target for _, target in delivered] == ["a", "b", "b", "a"]

    def test_unsubscribe_stops_delivery(self):
        recorder = TraceRecorder()
        delivered = []

        def subscriber(seq, tid, kind, target, loc):
            delivered.append(seq)

        recorder.subscribe(subscriber)
        recorder.record(OpKind.WRITE, "x")
        recorder.unsubscribe(subscriber)
        recorder.record(OpKind.WRITE, "x")
        assert delivered == [0]


class TestActivation:
    def test_activation_stack(self):
        assert current_recorder() is None
        outer, inner = TraceRecorder("outer"), TraceRecorder("inner")
        with activation(outer):
            assert current_recorder() is outer
            with activation(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is None

    def test_activation_is_visible_across_threads(self):
        recorder = TraceRecorder()
        seen = []
        with activation(recorder):
            run_threads(lambda: seen.append(current_recorder()))
        assert seen == [recorder]

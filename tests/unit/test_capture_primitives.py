"""Unit tests for the instrumented primitives and the patching layer.

Interleavings that matter are forced (via barriers/turn-taking on plain
``threading`` objects, which are invisible to the recorder), so the
recorded event sequences asserted here are deterministic.
"""

import threading

import pytest

from repro.capture import (
    OnlineDetector,
    Shared,
    TracedCondition,
    TracedLock,
    TracedRLock,
    TracedThread,
    capture,
    patched_threading,
    spawn,
    traced,
)
from repro.trace import OpKind
from repro.trace.validation import validate_trace


def kinds_and_targets(trace):
    return [(event.kind, event.target) for event in trace]


class TestTracedLock:
    def test_with_block_records_acquire_release(self):
        with capture() as recorder:
            lock = TracedLock(name="l")
            with lock:
                pass
        assert kinds_and_targets(recorder.trace()) == [
            (OpKind.ACQUIRE, "l"),
            (OpKind.RELEASE, "l"),
        ]

    def test_failed_nonblocking_acquire_records_nothing(self):
        with capture() as recorder:
            lock = TracedLock(name="l")
            lock.acquire()
            blocked = []
            worker = threading.Thread(target=lambda: blocked.append(lock.acquire(blocking=False)))
            worker.start()
            worker.join(timeout=10)
            lock.release()
        assert blocked == [False]
        assert len(recorder.trace()) == 2  # just the main thread's acq/rel

    def test_no_events_outside_capture(self):
        lock = TracedLock(name="l")
        with lock:
            pass  # must not raise, must not record anywhere

    def test_auto_names_are_unique(self):
        assert TracedLock().name != TracedLock().name

    def test_over_release_raises_without_recording(self):
        with capture() as recorder:
            lock = TracedLock(name="l")
            with pytest.raises(RuntimeError):
                lock.release()
        assert len(recorder.trace()) == 0  # no phantom RELEASE in the trace


class TestTracedRLock:
    def test_reentrant_acquires_are_flattened(self):
        with capture() as recorder:
            lock = TracedRLock(name="r")
            with lock:
                with lock:
                    pass
                # Inner release must not emit: the thread still holds the lock.
            trace = recorder.trace()
        assert kinds_and_targets(trace) == [(OpKind.ACQUIRE, "r"), (OpKind.RELEASE, "r")]
        assert validate_trace(trace) == []

    def test_wrong_thread_release_raises_without_recording(self):
        with capture() as recorder:
            lock = TracedRLock(name="r")
            lock.acquire()
            errors = []

            def rogue():
                try:
                    lock.release()
                except RuntimeError as error:
                    errors.append(error)

            worker = threading.Thread(target=rogue)
            worker.start()
            worker.join(timeout=10)
            lock.release()
            trace = recorder.trace()
        assert len(errors) == 1
        # Only the owner's balanced pair is in the trace.
        assert kinds_and_targets(trace) == [(OpKind.ACQUIRE, "r"), (OpKind.RELEASE, "r")]


class TestTracedCondition:
    def test_wait_records_release_and_reacquire(self):
        with capture() as recorder:
            ready = TracedCondition(TracedLock(name="c"))
            woke = threading.Event()

            def waiter():
                with ready:
                    ready.wait(timeout=10)
                woke.set()

            worker = TracedThread(target=waiter)
            worker.start()
            # Wait until the waiter is inside wait() (its release is recorded).
            while not any(event[2] is OpKind.RELEASE for event in recorder.raw_events()):
                pass
            with ready:
                ready.notify()
            worker.join(timeout=10)
            assert woke.is_set()
            trace = recorder.trace()

        assert validate_trace(trace) == []
        # waiter: acq, rel (enter wait) ... notifier: acq, rel ... waiter: acq, rel.
        lock_events = [event.kind for event in trace if event.is_lock_op]
        assert lock_events.count(OpKind.ACQUIRE) == 3
        assert lock_events.count(OpKind.RELEASE) == 3

    def test_wait_orders_waiter_after_notifier(self):
        """The ordering a wait() receives makes the handoff race-free."""
        with capture() as recorder:
            detector = OnlineDetector(recorder, order="HB")
            cell = Shared(0, name="cell")
            ready = TracedCondition()
            handed_off = threading.Event()

            def consumer():
                with ready:
                    while not handed_off.is_set():
                        ready.wait(timeout=10)
                cell.set(cell.get() + 1)  # after the handoff: ordered

            worker = TracedThread(target=consumer)
            worker.start()
            with ready:
                cell.set(1)
                handed_off.set()
                ready.notify()
            worker.join(timeout=10)

        # The consumer's access is ordered after the producer's via the
        # condition lock, so there is no race despite no common data lock.
        assert detector.finish().detection.race_count == 0


class TestTracedRLockCondition:
    def test_default_condition_lock_is_reentrant_like_stdlib(self):
        """`with cv:` + a helper that re-enters `with cv:` must not deadlock."""
        done = threading.Event()

        def reenter():
            with capture() as recorder:
                cv = TracedCondition()

                def helper():
                    with cv:  # legal on the stdlib default RLock
                        pass

                with cv:
                    helper()
                done.set()
                return recorder

        worker = threading.Thread(target=reenter, daemon=True)
        worker.start()
        worker.join(timeout=10)
        assert done.is_set(), "re-entrant condition acquire deadlocked"

    def test_condition_wait_fully_unwinds_a_nested_rlock(self):
        """Condition(RLock()).wait() at depth 2 must release both levels."""
        with capture() as recorder:
            rlock = TracedRLock(name="r")
            cv = TracedCondition(rlock)
            notified = threading.Event()

            def waiter():
                with cv:
                    with cv:  # nested: wait() must still free the lock
                        cv.wait(timeout=10)
                notified.set()

            worker = TracedThread(target=waiter)
            worker.start()
            # The notifier can only get the lock if wait() fully unwound it.
            acquired = False
            for _ in range(1000):
                if cv.acquire(blocking=False):
                    acquired = True
                    break
                threading.Event().wait(0.01)
            assert acquired, "wait() left the re-entrant lock held"
            cv.notify()
            cv.release()
            worker.join(timeout=10)
            assert notified.is_set()
            trace = recorder.trace()
        assert validate_trace(trace) == []


class TestTracedThread:
    def test_subclass_overriding_run_is_adopted(self):
        """The other standard Thread idiom: subclass with a run() override."""
        with capture(patch=True) as recorder:
            cell = Shared(0, name="x")

            class Worker(threading.Thread):  # threading.Thread is TracedThread here
                def run(self):
                    cell.set(1)

            worker = Worker()
            worker.start()
            worker.join()
            trace = recorder.trace()
        assert validate_trace(trace) == []
        # The write must land on the forked tid, not a fresh unforked one.
        (fork,) = [event for event in trace if event.is_fork]
        (write,) = [event for event in trace if event.is_write]
        assert write.tid == fork.other_thread
        assert trace.num_threads == 2

    def test_fork_join_bracket_child_events(self):
        with capture() as recorder:
            x = Shared(0, name="x")
            worker = spawn(lambda: x.set(1))
            worker.join()
            trace = recorder.trace()
        child = worker.trace_tid
        assert child == 1
        kinds = kinds_and_targets(trace)
        assert kinds[0] == (OpKind.FORK, child)
        assert kinds[-1] == (OpKind.JOIN, child)
        assert (OpKind.WRITE, "x") in kinds
        assert validate_trace(trace) == []

    def test_join_recorded_once_even_if_called_twice(self):
        with capture() as recorder:
            worker = spawn(lambda: None)
            worker.join()
            worker.join()
        joins = [event for event in recorder.trace() if event.is_join]
        assert len(joins) == 1

    def test_timed_out_join_records_nothing(self):
        release = threading.Event()
        with capture() as recorder:
            worker = spawn(release.wait, 10)
            worker.join(timeout=0.01)
            assert not any(event[2] is OpKind.JOIN for event in recorder.raw_events())
            release.set()
            worker.join()
        assert sum(1 for event in recorder.trace() if event.is_join) == 1


class TestSharedAndTraced:
    def test_shared_records_reads_and_writes(self):
        with capture() as recorder:
            cell = Shared(10, name="v")
            assert cell.get() == 10
            cell.set(11)
            assert cell.value == 11
            cell.value = 12
        assert kinds_and_targets(recorder.trace()) == [
            (OpKind.READ, "v"),
            (OpKind.WRITE, "v"),
            (OpKind.READ, "v"),
            (OpKind.WRITE, "v"),
        ]

    def test_traced_descriptor_uses_class_qualified_name(self):
        class Account:
            balance = traced()

            def __init__(self):
                self.balance = 0

        with capture() as recorder:
            account = Account()
            account.balance = account.balance + 5
        assert account.balance == 5  # outside capture: plain access, no events
        assert kinds_and_targets(recorder.trace()) == [
            (OpKind.WRITE, "Account.balance"),
            (OpKind.READ, "Account.balance"),
            (OpKind.WRITE, "Account.balance"),
        ]

    def test_traced_descriptor_unset_attribute_raises(self):
        class Holder:
            slot = traced()

        with pytest.raises(AttributeError):
            Holder().slot


class TestPatching:
    def test_patched_threading_swaps_and_restores(self):
        original = threading.Lock
        with patched_threading():
            assert threading.Lock is TracedLock
            assert threading.Thread is TracedThread
            assert threading.RLock is TracedRLock
            assert threading.Condition is TracedCondition
        assert threading.Lock is original

    def test_unmodified_code_is_recorded_under_patch(self):
        with capture(patch=True) as recorder:
            lock = threading.Lock()  # resolves to TracedLock

            def locked_section():
                with lock:
                    pass

            worker = threading.Thread(target=locked_section)
            worker.start()
            worker.join()
            trace = recorder.trace()
        assert validate_trace(trace) == []
        kinds = [event.kind for event in trace]
        assert OpKind.FORK in kinds and OpKind.JOIN in kinds
        assert OpKind.ACQUIRE in kinds and OpKind.RELEASE in kinds

    def test_thread_startup_machinery_is_not_traced(self):
        """Thread.__init__'s internal Event must not pollute the trace."""
        with capture(patch=True) as recorder:
            cell = Shared(0, name="only-var")
            worker = threading.Thread(target=lambda: cell.set(1))
            worker.start()
            worker.join()
            trace = recorder.trace()
        assert trace.num_threads == 2  # main + child, no phantom startup ids
        assert recorder.num_threads == 2
        assert len(trace.locks) == 0  # no traced locks leaked from Thread internals
        assert list(trace.variables) == ["only-var"]

"""Unit tests for :class:`repro.api.Session` and the event sources.

The contract pinned down here is the tentpole of the session API: a
session with *k* specs performs exactly **one** walk over its event
source (asserted via the sources' ``events_emitted`` counters), and for
every order × clock combination its races and timestamps equal the
legacy one-analysis-per-run results.
"""

import gzip

import pytest

from repro.analysis import ANALYSIS_CLASSES
from repro.api import (
    AnalysisSpec,
    CaptureSource,
    FileSource,
    GeneratorSource,
    Session,
    TraceSource,
    as_event_source,
    run_specs,
)
from repro.capture.recorder import TraceRecorder
from repro.clocks import clock_class_by_name
from repro.gen import RandomTraceConfig, get_profile
from repro.trace import OpKind, Trace, TraceBuilder, dumps_csv, dumps_std, load_trace, save_trace
from util_traces import make_random_trace

ALL_COMBOS = [f"{order}+{clock}" for order in ("hb", "shb", "maz") for clock in ("tc", "vc")]


@pytest.fixture
def small_trace() -> Trace:
    builder = TraceBuilder(name="small")
    builder.write(1, "x")
    builder.acquire(1, "l").write(1, "d").release(1, "l")
    builder.acquire(2, "l").read(2, "d").release(2, "l")
    builder.write(2, "x")
    builder.read(3, "d")
    return builder.build()


def race_set(result):
    return {
        (r.variable, r.prior_tid, r.prior_local_time, r.event_eid, r.event_tid)
        for r in result.detection.races
    }


class TestSessionEqualsIndividualRuns:
    """Races and timestamps match the legacy per-run path, for every combo."""

    @pytest.mark.parametrize("trace_seed", [0, 7, 42])
    def test_all_order_clock_combos_in_one_walk(self, trace_seed):
        trace = make_random_trace(trace_seed, num_events=150)
        specs = [f"{combo}+detect+ts" for combo in ALL_COMBOS]
        session_result = Session(specs).run(trace)
        assert len(session_result) == len(specs)
        for combo in ALL_COMBOS:
            order, clock = combo.split("+")
            legacy = ANALYSIS_CLASSES[order.upper()](
                clock_class_by_name(clock), detect=True, capture_timestamps=True
            ).run(trace)
            via_session = session_result[f"{combo}+detect+ts"]
            assert via_session.timestamps == legacy.timestamps, combo
            assert race_set(via_session) == race_set(legacy), combo
            assert via_session.detection.race_count == legacy.detection.race_count, combo
            assert via_session.num_events == legacy.num_events == len(trace)
            assert via_session.num_threads == legacy.num_threads

    def test_work_counters_match_individual_runs(self, small_trace):
        session_result = Session(["hb+tc+work", "hb+vc+work"]).run(small_trace)
        for clock in ("tc", "vc"):
            legacy = ANALYSIS_CLASSES["HB"](clock_class_by_name(clock), count_work=True).run(
                small_trace
            )
            via_session = session_result[f"hb+{clock}+work"]
            assert via_session.work.entries_processed == legacy.work.entries_processed
            assert via_session.work.entries_updated == legacy.work.entries_updated


class TestSinglePass:
    """k specs, one event walk — the event-feed counters prove it."""

    def test_trace_source_is_walked_exactly_once(self, small_trace):
        source = TraceSource(small_trace)
        session = Session([f"{combo}+detect" for combo in ALL_COMBOS])
        result = session.run(source)
        assert source.events_emitted == len(small_trace)  # not k * len(trace)
        assert session.events_fed == len(small_trace)
        assert result.num_events == len(small_trace)
        for _, spec_result in result:
            assert spec_result.num_events == len(small_trace)

    def test_file_source_is_read_exactly_once(self, small_trace, tmp_path):
        path = tmp_path / "trace.std"
        save_trace(small_trace, str(path))
        source = FileSource(str(path))
        Session(["hb+tc", "hb+vc", "shb+tc"]).run(source)
        assert source.events_emitted == len(small_trace)

    def test_duplicate_specs_are_collapsed(self, small_trace):
        session = Session(["hb+tc+detect", "HB+TC+detect", AnalysisSpec(detect=True)])
        assert len(session.specs) == 1
        result = session.run(small_trace)
        assert len(result) == 1

    def test_empty_spec_list_is_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Session([])

    def test_feed_before_begin_is_an_error(self):
        session = Session(["hb+tc"])
        with pytest.raises(RuntimeError):
            session.feed(None)
        with pytest.raises(RuntimeError):
            session.finish()


class TestSessionResult:
    def test_indexing_accepts_specs_and_strings(self, small_trace):
        result = Session(["shb+vc+detect"]).run(small_trace)
        by_string = result["shb+vc+detect"]
        by_spec = result[AnalysisSpec(order="SHB", clock="VC", detect=True)]
        assert by_string is by_spec is result.primary
        assert "shb+vc+detect" in result and "hb+tc" not in result

    def test_elapsed_times_are_positive_and_consistent(self, small_trace):
        result = Session(["hb+tc", "hb+vc"]).run(small_trace)
        per_spec = sum(r.elapsed_ns for _, r in result)
        assert all(r.elapsed_ns > 0 for _, r in result)
        assert result.elapsed_ns >= per_spec  # walk time includes iteration overhead
        assert result.elapsed_seconds == result.elapsed_ns / 1e9

    def test_as_dict_is_json_ready(self, small_trace):
        import json

        result = Session(["hb+tc+detect+work"]).run(small_trace)
        payload = json.loads(result.to_json())
        spec_payload = payload["specs"]["hb+tc+detect+work"]
        assert payload["events"] == len(small_trace)
        assert spec_payload["detection"]["race_count"] >= 1
        assert spec_payload["work"]["entries_processed"] > 0
        assert spec_payload["elapsed_ns"] > 0

    def test_run_specs_convenience(self, small_trace):
        result = run_specs(small_trace, "hb+tc+detect", "hb+vc+detect")
        counts = {key: r.detection.race_count for key, r in result}
        assert len(set(counts.values())) == 1


class TestFileSource:
    @pytest.mark.parametrize("suffix,dump", [("std", dumps_std), ("csv", dumps_csv)])
    @pytest.mark.parametrize("compress", [False, True])
    def test_streams_both_formats_equal_to_eager_load(
        self, small_trace, tmp_path, suffix, dump, compress
    ):
        name = f"trace.{suffix}" + (".gz" if compress else "")
        path = tmp_path / name
        text = dump(small_trace)
        if compress:
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                handle.write(text)
        else:
            path.write_text(text)
        source = FileSource(str(path))
        streamed = list(source.events())
        eager = load_trace(str(path), fmt=suffix)
        assert streamed == list(eager.events)

    def test_session_over_file_equals_session_over_trace(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv.gz"
        save_trace(small_trace, str(path), fmt="csv")
        from_file = Session(["shb+tc+detect"]).run(FileSource(str(path)))
        from_trace = Session(["shb+tc+detect"]).run(small_trace)
        assert race_set(from_file.primary) == race_set(from_trace.primary)

    def test_threads_unknown_upfront(self, tmp_path):
        path = tmp_path / "trace.std"
        path.write_text("T1|w(x)|0\n")
        assert FileSource(str(path)).threads() is None


class TestGeneratorSource:
    def test_profile_and_config_sources(self):
        profile = get_profile("account-like")
        source = profile.source()
        assert isinstance(source, GeneratorSource)
        assert source.name == "account-like"
        result = Session(["hb+tc"]).run(source)
        assert result.num_events == source.events_emitted == len(profile.generate())

        config = RandomTraceConfig(name="rnd", num_threads=3, num_events=40, seed=1)
        result = Session(["hb+tc"]).run(GeneratorSource(config))
        assert result.name == "rnd" and result.num_events > 0

    def test_callable_source_generates_once(self):
        calls = []

        def factory():
            calls.append(1)
            return TraceBuilder(name="made").write(1, "x").write(2, "x").build()

        source = GeneratorSource(factory)
        Session(["hb+tc+detect"]).run(source)
        assert calls == [1]  # threads() + events() share one generation

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            GeneratorSource(123)


class TestCaptureSource:
    """Capture-backed sessions: live (attach) and post-hoc (replay)."""

    def _record_racy_program(self, recorder: TraceRecorder) -> None:
        t0 = recorder.allocate_tid()
        t1 = recorder.allocate_tid()
        recorder.record(OpKind.WRITE, "x", tid=t0, location="prog.py:1")
        recorder.record(OpKind.ACQUIRE, "l", tid=t0)
        recorder.record(OpKind.RELEASE, "l", tid=t0)
        recorder.record(OpKind.ACQUIRE, "m", tid=t1)
        recorder.record(OpKind.RELEASE, "m", tid=t1)
        recorder.record(OpKind.WRITE, "x", tid=t1, location="prog.py:9")

    def test_live_session_over_capture_source(self):
        recorder = TraceRecorder(name="live")
        source = CaptureSource(recorder)
        races = []
        session = Session(
            ["shb+tc+detect", "shb+vc+detect"], on_race=races.append, locate=source.locate
        )
        source.attach(session)
        self._record_racy_program(recorder)
        result = source.finish()
        assert source.events_emitted == 6
        assert result.num_events == 6
        counts = {key: r.detection.race_count for key, r in result}
        assert counts["shb+tc+detect"] == counts["shb+vc+detect"] == 1
        assert len(races) == 1  # only the first spec narrates
        assert races[0].location == "prog.py:9"

    def test_live_equals_post_hoc_replay(self):
        recorder = TraceRecorder(name="cmp")
        source = CaptureSource(recorder)
        session = Session(["shb+tc+detect"], locate=source.locate)
        source.attach(session)
        self._record_racy_program(recorder)
        live = source.finish()

        replay_source = CaptureSource(recorder)
        replay = Session(["shb+tc+detect"], locate=replay_source.locate).run(replay_source)
        assert race_set(live.primary) == race_set(replay.primary)
        assert replay.primary.detection.races[0].location == "prog.py:9"

    def test_double_attach_and_finish_without_attach_raise(self):
        recorder = TraceRecorder(name="guard")
        source = CaptureSource(recorder)
        with pytest.raises(RuntimeError, match="no session attached"):
            source.finish()
        source.attach(Session(["hb+tc"]))
        with pytest.raises(RuntimeError, match="already attached"):
            source.attach(Session(["hb+tc"]))


class TestAsEventSource:
    def test_coercions(self, small_trace, tmp_path):
        path = tmp_path / "t.std"
        save_trace(small_trace, str(path))
        assert isinstance(as_event_source(small_trace), TraceSource)
        assert isinstance(as_event_source(str(path)), FileSource)
        assert isinstance(as_event_source(path), FileSource)
        assert isinstance(as_event_source(TraceRecorder()), CaptureSource)
        assert isinstance(as_event_source(get_profile("account-like")), GeneratorSource)
        existing = TraceSource(small_trace)
        assert as_event_source(existing) is existing
        with pytest.raises(TypeError):
            as_event_source(3.14)

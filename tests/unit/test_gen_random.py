"""Unit tests for the random trace generator (:mod:`repro.gen.random_trace`)."""

import pytest

from repro.gen import RandomTraceConfig, generate_trace
from repro.trace import compute_statistics, is_well_formed


class TestConfigValidation:
    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ValueError):
            RandomTraceConfig(num_threads=0)

    def test_rejects_nonpositive_events(self):
        with pytest.raises(ValueError):
            RandomTraceConfig(num_events=0)

    def test_rejects_out_of_range_sync_fraction(self):
        with pytest.raises(ValueError):
            RandomTraceConfig(sync_fraction=1.5)

    def test_rejects_out_of_range_write_fraction(self):
        with pytest.raises(ValueError):
            RandomTraceConfig(write_fraction=-0.1)

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            RandomTraceConfig(topology="ring")


class TestGeneration:
    def test_generation_is_deterministic(self):
        config = RandomTraceConfig(seed=3, num_events=300)
        assert generate_trace(config) == generate_trace(config)

    def test_different_seeds_differ(self):
        a = generate_trace(RandomTraceConfig(seed=1, num_events=300))
        b = generate_trace(RandomTraceConfig(seed=2, num_events=300))
        assert a != b

    def test_trace_is_well_formed(self):
        for topology in ("shared", "partitioned", "star", "pairwise"):
            trace = generate_trace(
                RandomTraceConfig(seed=5, num_events=400, topology=topology, num_threads=6)
            )
            assert is_well_formed(trace), topology

    def test_trace_name_comes_from_config(self):
        trace = generate_trace(RandomTraceConfig(name="my-trace", num_events=50))
        assert trace.name == "my-trace"

    def test_event_count_is_close_to_target(self):
        trace = generate_trace(RandomTraceConfig(num_events=1000, seed=1))
        assert 1000 <= len(trace) <= 1004  # may finish the last block

    def test_thread_universe_is_respected(self):
        trace = generate_trace(RandomTraceConfig(num_threads=5, num_events=500, seed=2))
        assert set(trace.threads) <= set(range(1, 6))

    def test_sync_fraction_is_approximated(self):
        config = RandomTraceConfig(num_events=4000, sync_fraction=0.3, seed=4)
        stats = compute_statistics(generate_trace(config))
        assert 0.2 <= stats.sync_fraction <= 0.4

    def test_pure_sync_trace(self):
        config = RandomTraceConfig(num_events=200, sync_fraction=1.0, seed=4)
        stats = compute_statistics(generate_trace(config))
        assert stats.sync_fraction == 1.0
        assert stats.num_access_events == 0

    def test_pure_access_trace(self):
        config = RandomTraceConfig(num_events=200, sync_fraction=0.0, seed=4)
        stats = compute_statistics(generate_trace(config))
        assert stats.num_sync_events == 0

    def test_write_fraction_extremes(self):
        all_writes = generate_trace(
            RandomTraceConfig(num_events=300, sync_fraction=0.0, write_fraction=1.0, seed=1)
        )
        assert all(event.is_write for event in all_writes)
        all_reads = generate_trace(
            RandomTraceConfig(num_events=300, sync_fraction=0.0, write_fraction=0.0, seed=1)
        )
        assert all(event.is_read for event in all_reads)

    def test_hot_threads_are_more_active(self):
        config = RandomTraceConfig(
            num_threads=10, num_events=4000, hot_thread_fraction=0.2, hot_thread_weight=5.0, seed=9
        )
        trace = generate_trace(config)
        counts = {tid: 0 for tid in trace.threads}
        for event in trace:
            counts[event.tid] += 1
        hot = counts[1] + counts[2]
        cold_average = sum(counts[tid] for tid in range(3, 11)) / 8
        assert hot / 2 > 2 * cold_average

    def test_star_topology_uses_per_client_locks(self):
        config = RandomTraceConfig(
            num_threads=6, num_events=500, sync_fraction=1.0, topology="star", seed=3
        )
        trace = generate_trace(config)
        assert all(str(lock).startswith("l_star_") for lock in trace.locks)

    def test_pairwise_topology_uses_pair_locks(self):
        config = RandomTraceConfig(
            num_threads=4, num_events=500, sync_fraction=1.0, topology="pairwise", seed=3
        )
        trace = generate_trace(config)
        assert all(str(lock).startswith("l_") and str(lock).count("_") == 2 for lock in trace.locks)
        assert len(trace.locks) <= 6  # at most C(4, 2) pair locks

    def test_single_thread_star_and_pairwise_do_not_crash(self):
        for topology in ("star", "pairwise"):
            trace = generate_trace(
                RandomTraceConfig(num_threads=1, num_events=50, sync_fraction=1.0, topology=topology)
            )
            assert len(trace) >= 50

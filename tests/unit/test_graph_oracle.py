"""Unit tests for the graph-based partial-order oracle."""

import pytest

from repro.analysis import GraphOrder
from repro.trace import TraceBuilder


@pytest.fixture
def locked_trace():
    return TraceBuilder().write(1, "x").sync(1, "l").sync(2, "l").write(2, "x").build()


class TestConstruction:
    def test_rejects_unknown_order(self, locked_trace):
        with pytest.raises(ValueError):
            GraphOrder(locked_trace, "WCP")

    def test_order_name_is_normalized(self, locked_trace):
        assert GraphOrder(locked_trace, "hb").order == "HB"


class TestHBQueries:
    def test_thread_order_is_included(self, locked_trace):
        oracle = GraphOrder(locked_trace, "HB")
        assert oracle.ordered(locked_trace[0], locked_trace[1])
        assert not oracle.ordered(locked_trace[1], locked_trace[0])

    def test_release_acquire_ordering(self, locked_trace):
        oracle = GraphOrder(locked_trace, "HB")
        release, acquire = locked_trace[2], locked_trace[3]
        assert oracle.ordered(release, acquire)

    def test_ordered_is_reflexive(self, locked_trace):
        oracle = GraphOrder(locked_trace, "HB")
        assert oracle.ordered(locked_trace[0], locked_trace[0])

    def test_transitivity_across_lock(self, locked_trace):
        oracle = GraphOrder(locked_trace, "HB")
        assert oracle.ordered(locked_trace[0], locked_trace[5])

    def test_concurrent_events(self):
        trace = TraceBuilder().write(1, "x").write(2, "x").build()
        oracle = GraphOrder(trace, "HB")
        assert oracle.concurrent(trace[0], trace[1])

    def test_release_to_all_later_acquires(self):
        trace = TraceBuilder().sync(1, "l").sync(2, "l").sync(3, "l").build()
        oracle = GraphOrder(trace, "HB")
        assert oracle.ordered(trace[1], trace[4])

    def test_fork_join_edges(self):
        trace = TraceBuilder().fork(1, 2).write(2, "x").join(3, 2).build(validate=False)
        oracle = GraphOrder(trace, "HB")
        assert oracle.ordered(trace[0], trace[1])
        assert oracle.ordered(trace[1], trace[2])


class TestTimestampsAndRaces:
    def test_timestamp_of_includes_own_local_time(self, locked_trace):
        oracle = GraphOrder(locked_trace, "HB")
        assert oracle.timestamp_of(locked_trace[0]) == {1: 1}

    def test_timestamps_length_matches_trace(self, locked_trace):
        assert len(GraphOrder(locked_trace, "HB").timestamps()) == len(locked_trace)

    def test_predecessors(self, locked_trace):
        oracle = GraphOrder(locked_trace, "HB")
        predecessor_ids = {event.eid for event in oracle.predecessors(locked_trace[3])}
        assert predecessor_ids == {0, 1, 2}

    def test_racy_pairs_on_protected_trace(self, locked_trace):
        assert GraphOrder(locked_trace, "HB").racy_pairs() == []

    def test_racy_pairs_on_unprotected_trace(self, racy_trace):
        oracle = GraphOrder(racy_trace, "HB")
        pairs = oracle.racy_pairs()
        assert len(pairs) == 1
        assert {event.tid for pair in pairs for event in pair} == {1, 2}

    def test_racy_access_events_deduplicates(self):
        trace = TraceBuilder().write(1, "x").write(2, "x").write(3, "x").build()
        oracle = GraphOrder(trace, "HB")
        events = oracle.racy_access_events()
        assert [event.eid for event in events] == [1, 2]


class TestOrderStrength:
    def test_shb_orders_read_after_last_write(self):
        trace = TraceBuilder().write(1, "x").read(2, "x").build()
        assert GraphOrder(trace, "SHB").ordered(trace[0], trace[1])
        assert not GraphOrder(trace, "HB").ordered(trace[0], trace[1])

    def test_maz_orders_all_conflicting_accesses(self):
        trace = TraceBuilder().write(1, "x").write(2, "x").build()
        assert GraphOrder(trace, "MAZ").ordered(trace[0], trace[1])
        assert not GraphOrder(trace, "SHB").ordered(trace[0], trace[1])

    def test_maz_has_no_races(self, racy_trace):
        assert GraphOrder(racy_trace, "MAZ").racy_pairs() == []

"""Unit tests for the analysis engine plumbing and the ablation variants."""

import pytest

from repro.analysis import HBAnalysis, SHBAnalysis, analysis_class_by_name
from repro.analysis.ablations import HBDeepCopyAnalysis, SHBDeepCopyAnalysis
from repro.analysis.engine import PartialOrderAnalysis
from repro.clocks import TreeClock, VectorClock
from repro.trace import Trace, TraceBuilder
from repro.trace import event as ev


class TestEngine:
    def test_base_class_requires_handle_event(self):
        trace = TraceBuilder().read(1, "x").build()
        with pytest.raises(NotImplementedError):
            PartialOrderAnalysis(TreeClock).run(trace)

    def test_empty_trace_produces_empty_result(self):
        result = HBAnalysis(TreeClock, capture_timestamps=True).run(Trace([]))
        assert result.num_events == 0
        assert result.timestamps == []

    def test_begin_and_end_events_only_advance_local_time(self):
        trace = Trace([ev.begin(1), ev.read(1, "x"), ev.end(1)])
        result = HBAnalysis(TreeClock, capture_timestamps=True).run(trace)
        assert result.timestamps == [{1: 1}, {1: 2}, {1: 3}]

    def test_thread_clocks_are_created_lazily_and_cached(self):
        analysis = HBAnalysis(TreeClock)
        analysis.run(TraceBuilder().read(1, "x").read(2, "y").build())
        assert set(analysis.thread_clocks) == {1, 2}
        assert analysis.clock_of_thread(1) is analysis.thread_clocks[1]

    def test_lock_clocks_are_created_lazily(self):
        analysis = HBAnalysis(TreeClock)
        analysis.run(TraceBuilder().sync(1, "a").sync(1, "b").build())
        assert set(analysis.lock_clocks) == {"a", "b"}

    def test_rerun_resets_state(self):
        analysis = HBAnalysis(TreeClock)
        analysis.run(TraceBuilder().sync(1, "a").build())
        analysis.run(TraceBuilder().sync(2, "b").build())
        assert set(analysis.thread_clocks) == {2}
        assert set(analysis.lock_clocks) == {"b"}

    def test_work_counter_absent_unless_requested(self):
        result = HBAnalysis(TreeClock).run(TraceBuilder().read(1, "x").build())
        assert result.work is None
        counted = HBAnalysis(TreeClock, count_work=True).run(TraceBuilder().read(1, "x").build())
        assert counted.work is not None and counted.work.increments == 1

    def test_analysis_class_by_name(self):
        assert analysis_class_by_name("hb") is HBAnalysis
        with pytest.raises(ValueError):
            analysis_class_by_name("CP")


class TestAblationVariants:
    @pytest.fixture
    def trace(self):
        builder = TraceBuilder()
        for turn in range(20):
            tid = (turn % 3) + 1
            builder.write(tid, f"x{turn % 4}")
            builder.sync(tid, f"l{turn % 2}")
        return builder.build()

    def test_hb_deep_copy_variant_matches_baseline(self, trace):
        baseline = HBAnalysis(TreeClock, capture_timestamps=True).run(trace)
        ablated = HBDeepCopyAnalysis(TreeClock, capture_timestamps=True).run(trace)
        assert baseline.timestamps == ablated.timestamps
        assert ablated.partial_order == "HB"

    def test_shb_deep_copy_variant_matches_baseline(self, trace):
        baseline = SHBAnalysis(TreeClock, capture_timestamps=True).run(trace)
        ablated = SHBDeepCopyAnalysis(TreeClock, capture_timestamps=True).run(trace)
        assert baseline.timestamps == ablated.timestamps

    def test_deep_copy_variant_does_not_do_less_work(self, trace):
        baseline = HBAnalysis(TreeClock, count_work=True).run(trace)
        ablated = HBDeepCopyAnalysis(TreeClock, count_work=True).run(trace)
        assert ablated.work.entries_processed >= baseline.work.entries_processed

    def test_ablation_variants_support_detection(self, trace):
        baseline = SHBAnalysis(TreeClock, detect=True).run(trace)
        ablated = SHBDeepCopyAnalysis(TreeClock, detect=True).run(trace)
        assert baseline.detection.race_count == ablated.detection.race_count

    def test_ablation_variants_work_with_vector_clocks(self, trace):
        baseline = HBAnalysis(VectorClock, capture_timestamps=True).run(trace)
        ablated = HBDeepCopyAnalysis(VectorClock, capture_timestamps=True).run(trace)
        assert baseline.timestamps == ablated.timestamps

"""Unit tests for the trace builder and well-formedness validation."""

import pytest

from repro.trace import Trace, TraceBuilder
from repro.trace import event as ev
from repro.trace.validation import (
    ValidationError,
    assert_well_formed,
    is_well_formed,
    validate_fork_join,
    validate_lock_semantics,
    validate_trace,
)


class TestBuilder:
    def test_fluent_chaining_returns_builder(self):
        builder = TraceBuilder()
        assert builder.read(1, "x") is builder
        assert builder.write(1, "x") is builder
        assert builder.acquire(1, "l").release(1, "l") is builder

    def test_build_produces_trace_with_name(self):
        trace = TraceBuilder(name="demo").read(1, "x").build()
        assert isinstance(trace, Trace)
        assert trace.name == "demo"

    def test_sync_expands_to_acquire_release(self):
        trace = TraceBuilder().sync(1, "l").build()
        assert [event.kind.value for event in trace] == ["acq", "rel"]

    def test_len_counts_pending_events(self):
        builder = TraceBuilder().read(1, "x").write(2, "y")
        assert len(builder) == 2

    def test_events_returns_copy(self):
        builder = TraceBuilder().read(1, "x")
        events = builder.events()
        events.clear()
        assert len(builder) == 1

    def test_critical_section_wraps_body(self):
        trace = TraceBuilder().critical_section(1, "l", [ev.write(1, "x")]).build()
        assert [event.kind.value for event in trace] == ["acq", "w", "rel"]

    def test_critical_section_rejects_foreign_thread_body(self):
        with pytest.raises(ValueError):
            TraceBuilder().critical_section(1, "l", [ev.write(2, "x")])

    def test_fork_and_join(self):
        trace = TraceBuilder().fork(1, 2).read(2, "x").join(1, 2).build()
        assert trace[0].is_fork and trace[2].is_join

    def test_build_validates_by_default(self):
        builder = TraceBuilder().release(1, "l")
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_can_skip_validation(self):
        trace = TraceBuilder().release(1, "l").build(validate=False)
        assert len(trace) == 1

    def test_append_accepts_prebuilt_events(self):
        trace = TraceBuilder().append(ev.read(3, "v")).build()
        assert trace[0].tid == 3


class TestLockSemantics:
    def test_valid_locking_passes(self):
        trace = TraceBuilder().sync(1, "l").sync(2, "l").build(validate=False)
        assert validate_lock_semantics(trace) == []

    def test_release_without_acquire_is_flagged(self):
        trace = Trace([ev.release(1, "l")])
        problems = validate_lock_semantics(trace)
        assert len(problems) == 1
        assert "does not hold" in problems[0].message

    def test_double_acquire_same_thread_is_flagged(self):
        trace = Trace([ev.acquire(1, "l"), ev.acquire(1, "l")])
        problems = validate_lock_semantics(trace)
        assert any("re-acquires" in problem.message for problem in problems)

    def test_acquire_of_held_lock_by_other_thread_is_flagged(self):
        trace = Trace([ev.acquire(1, "l"), ev.acquire(2, "l")])
        problems = validate_lock_semantics(trace)
        assert any("while held by" in problem.message for problem in problems)

    def test_release_by_non_owner_is_flagged(self):
        trace = Trace([ev.acquire(1, "l"), ev.release(2, "l")])
        problems = validate_lock_semantics(trace)
        assert any("does not hold" in problem.message for problem in problems)

    def test_open_critical_section_is_allowed(self):
        trace = Trace([ev.acquire(1, "l"), ev.read(1, "x")])
        assert validate_lock_semantics(trace) == []

    def test_independent_locks_do_not_interfere(self):
        trace = Trace([ev.acquire(1, "a"), ev.acquire(2, "b"), ev.release(2, "b"), ev.release(1, "a")])
        assert validate_lock_semantics(trace) == []


class TestForkJoin:
    def test_valid_fork_join_passes(self):
        trace = Trace([ev.fork(1, 2), ev.read(2, "x"), ev.join(1, 2)])
        assert validate_fork_join(trace) == []

    def test_self_fork_is_flagged(self):
        trace = Trace([ev.fork(1, 1)])
        assert any("forks itself" in problem.message for problem in validate_fork_join(trace))

    def test_double_fork_is_flagged(self):
        trace = Trace([ev.fork(1, 2), ev.fork(3, 2)])
        assert any("forked more than once" in p.message for p in validate_fork_join(trace))

    def test_events_before_fork_are_flagged(self):
        trace = Trace([ev.read(2, "x"), ev.fork(1, 2)])
        assert any("events before its fork" in p.message for p in validate_fork_join(trace))

    def test_events_after_join_are_flagged(self):
        trace = Trace([ev.fork(1, 2), ev.join(1, 2), ev.read(2, "x")])
        assert any("events after it is joined" in p.message for p in validate_fork_join(trace))

    def test_self_join_is_flagged(self):
        trace = Trace([ev.join(1, 1)])
        assert any("joins itself" in p.message for p in validate_fork_join(trace))


class TestTopLevelValidation:
    def test_validate_trace_combines_all_checks(self):
        trace = Trace([ev.release(1, "l"), ev.fork(2, 2)])
        problems = validate_trace(trace)
        assert len(problems) == 2

    def test_is_well_formed(self):
        good = TraceBuilder().sync(1, "l").build(validate=False)
        bad = Trace([ev.release(1, "l")])
        assert is_well_formed(good)
        assert not is_well_formed(bad)

    def test_assert_well_formed_raises_with_details(self):
        bad = Trace([ev.release(1, "l")])
        with pytest.raises(ValidationError) as excinfo:
            assert_well_formed(bad)
        assert "not well-formed" in str(excinfo.value)
        assert excinfo.value.problems

    def test_validation_error_truncates_long_problem_lists(self):
        bad = Trace([ev.release(1, f"l{i}") for i in range(10)])
        with pytest.raises(ValidationError) as excinfo:
            assert_well_formed(bad)
        assert "+5 more" in str(excinfo.value)

    def test_problem_str_mentions_event(self):
        bad = Trace([ev.release(1, "l")])
        problem = validate_trace(bad)[0]
        assert "rel(l)" in str(problem)

"""Unit tests for the experiment runners (small, fast configurations)."""

import pytest

from repro.experiments import ExperimentConfig, SuiteRunner
from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
)
from repro.experiments.figure7 import spearman_correlation
from repro.experiments.figure10 import ScalabilityConfig
from repro.experiments.runner import DEFAULT_ORDERS


# A deliberately tiny configuration so each experiment runs in well under a second.
FAST = ExperimentConfig(scale=0.15, repetitions=1, max_profiles=5)


@pytest.fixture(scope="module")
def shared_runner() -> SuiteRunner:
    return SuiteRunner(FAST)


class TestExperimentConfig:
    def test_default_orders(self):
        assert tuple(DEFAULT_ORDERS) == ("MAZ", "SHB", "HB")

    def test_analysis_classes_resolution(self):
        classes = FAST.analysis_classes()
        assert [cls.PARTIAL_ORDER for cls in classes] == ["MAZ", "SHB", "HB"]

    def test_analysis_classes_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            ExperimentConfig(orders=("HB", "XYZ")).analysis_classes()


class TestSuiteRunner:
    def test_profiles_respect_max(self, shared_runner):
        assert len(shared_runner.profiles) == 5

    def test_traces_are_cached(self, shared_runner):
        first = shared_runner.traces()
        second = shared_runner.traces()
        assert all(a is b for a, b in zip(first, second))

    def test_statistics_align_with_profiles(self, shared_runner):
        stats = shared_runner.statistics()
        assert [s.name for s in stats] == [p.name for p in shared_runner.profiles]

    def test_speedup_is_cached(self, shared_runner):
        trace = shared_runner.traces()[0]
        analysis_class = FAST.analysis_classes()[0]
        first = shared_runner.speedup(trace, analysis_class, False)
        second = shared_runner.speedup(trace, analysis_class, False)
        assert first is second

    def test_work_measurements_cover_orders(self, shared_runner):
        measurements = shared_runner.work_measurements(orders=["HB"])
        assert len(measurements) == len(shared_runner.profiles)
        assert all(m.partial_order == "HB" for m in measurements)


class TestTableRunners:
    def test_table1_rows(self, shared_runner):
        report = table1.run(FAST, shared_runner)
        assert report.experiment == "table1"
        labels = [row[0] for row in report.rows]
        assert "Threads" in labels and "Events" in labels
        assert report.summary["traces"] == 5

    def test_table2_shape(self, shared_runner):
        report = table2.run(FAST, shared_runner)
        assert report.headers[0] == "Configuration"
        assert len(report.rows) == 2
        assert len(report.rows[0]) == 1 + len(FAST.orders)

    def test_table2_includes_paper_reference_values(self, shared_runner):
        report = table2.run(FAST, shared_runner)
        assert any("paper" in key for key in report.summary)

    def test_table3_lists_every_profile(self, shared_runner):
        report = table3.run(FAST, shared_runner)
        assert len(report.rows) == 5
        assert report.headers[:2] == ["Benchmark", "Family"]


class TestFigureRunners:
    def test_figure6_point_count(self, shared_runner):
        report = figure6.run(FAST, shared_runner)
        # 5 traces x 3 orders x 2 panels
        assert len(report.rows) == 30
        assert report.summary["points"] == 30

    def test_figure7_rows_sorted_by_sync_fraction(self, shared_runner):
        report = figure7.run(FAST, shared_runner)
        sync_column = [row[2] for row in report.rows]
        assert sync_column == sorted(sync_column)

    def test_figure8_respects_theorem_bound(self, shared_runner):
        report = figure8.run(FAST, shared_runner)
        assert report.summary["max TCWork/VTWork"] <= 3.0
        assert len(report.rows) == 5

    def test_figure9_has_rows_per_order(self, shared_runner):
        report = figure9.run(FAST, shared_runner)
        orders_in_rows = {row[0] for row in report.rows}
        assert orders_in_rows == {"MAZ", "SHB", "HB"}

    def test_figure10_sweep(self):
        scalability = ScalabilityConfig(thread_counts=(4, 8), num_events=400, repetitions=1)
        report = figure10.run(FAST, scalability)
        assert len(report.rows) == 2 * len(scalability.scenarios)
        assert report.headers[0] == "Scenario"


class TestSpearman:
    def test_perfect_positive_correlation(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative_correlation(self):
        assert spearman_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_degenerate_inputs(self):
        assert spearman_correlation([1], [1]) == 0.0
        assert spearman_correlation([1, 2], [1]) == 0.0

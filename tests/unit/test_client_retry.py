"""Unit tests of the :class:`ServeClient` retry/backoff machinery.

A minimal hand-rolled TCP peer plays the faulty server: it can answer,
hard-reset (``SO_LINGER 0`` → the client sees ``ECONNRESET``), or
refuse.  The contract under test: idempotent ops reconnect and replay
under a bounded, seeded, full-jitter backoff; non-idempotent ops (the
stream family) never retry; retry outcomes land on the
``client.retries`` counter.
"""

import socket
import threading
import time

import pytest

from repro.faults import reset_socket
from repro.obs import metrics as obs_metrics
from repro.serve.client import ServeClient, ServeClientError, _is_transient
from repro.serve.protocol import read_message, write_message


class FlakyServer:
    """A scripted TCP peer: each accepted connection runs one behavior.

    Behaviors: ``"ok"`` answers every request on the connection;
    ``"reset"`` reads one request then hard-resets the socket; ``"eof"``
    reads one request then closes cleanly (the client sees EOF).
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        for behavior in self.script:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            try:
                if behavior in ("reset", "eof"):
                    request = read_message(rfile)
                    self.requests.append((behavior, request))
                    # makefile() wrappers hold the fd open; close them
                    # first so the close below is the real one (and, for
                    # "reset", carries the SO_LINGER-0 RST).
                    rfile.close()
                    wfile.close()
                    if behavior == "reset":
                        reset_socket(conn)
                    else:
                        conn.close()
                    continue
                while True:
                    request = read_message(rfile)
                    if request is None:
                        break
                    self.requests.append((behavior, request))
                    write_message(wfile, {"ok": True, "echo": request.get("op")})
            except OSError:
                pass
            finally:
                for closable in (rfile, wfile, conn):
                    try:
                        closable.close()
                    except OSError:
                        pass

    def close(self):
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


@pytest.fixture
def metrics_registry():
    registry = obs_metrics.get_registry()
    was_enabled = registry.enabled
    registry.reset()
    registry.enable()
    yield registry
    registry.reset()
    if not was_enabled:
        registry.disable()


def retry_counts(registry):
    return {
        key: value
        for key, value in registry.snapshot().items()
        if key.startswith("client.retries")
    }


class TestTransientClassification:
    def test_resets_refusals_and_pipes_are_transient(self):
        assert _is_transient(ConnectionResetError())
        assert _is_transient(ConnectionRefusedError())
        assert _is_transient(BrokenPipeError())
        assert _is_transient(ConnectionAbortedError())

    def test_timeouts_and_plain_errors_are_not(self):
        assert not _is_transient(socket.timeout("slow"))
        assert not _is_transient(OSError("disk on fire"))
        assert not _is_transient(ValueError("nope"))


class TestRequestRetry:
    def test_idempotent_op_recovers_from_a_reset(self, metrics_registry):
        server = FlakyServer(["reset", "ok"])
        try:
            client = ServeClient(
                "127.0.0.1", server.port, timeout=5, retries=3, backoff=0.01, retry_seed=0
            )
            response = client.ping()
            assert response["echo"] == "ping"
            client.close()
        finally:
            server.close()
        counts = retry_counts(metrics_registry)
        assert any("retry" in key for key in counts)
        assert any("recovered" in key for key in counts)

    def test_retries_exhaust_with_bounded_attempts(self, metrics_registry):
        server = FlakyServer(["reset", "reset", "reset", "reset"])
        try:
            client = ServeClient(
                "127.0.0.1", server.port, timeout=5, retries=2, backoff=0.01, retry_seed=0
            )
            with pytest.raises(ServeClientError):
                client.ping()
            client.close()
        finally:
            server.close()
        # initial + 2 retries = 3 requests on the wire, then give up
        assert len(server.requests) == 3
        counts = retry_counts(metrics_registry)
        assert any("exhausted" in key for key in counts)

    def test_stream_ops_are_never_replayed(self, metrics_registry):
        server = FlakyServer(["reset", "ok"])
        try:
            client = ServeClient(
                "127.0.0.1", server.port, timeout=5, retries=3, backoff=0.01, retry_seed=0
            )
            with pytest.raises(ServeClientError):
                client.request({"op": "feed", "lines": ["w 1 x"]})
            client.close()
        finally:
            server.close()
        # exactly one attempt: replaying a feed could double-ingest events
        assert len(server.requests) == 1
        assert retry_counts(metrics_registry) == {}

    def test_eof_reply_counts_as_a_reset(self):
        # A server that closes gracefully mid-request looks like EOF, not
        # ECONNRESET; the client must treat both as the same transient.
        server = FlakyServer(["eof", "ok"])
        try:
            client = ServeClient(
                "127.0.0.1", server.port, timeout=5, retries=2, backoff=0.01, retry_seed=0
            )
            assert client.ping()["echo"] == "ping"
            client.close()
        finally:
            server.close()


class TestConnectRetry:
    def test_connect_retries_until_the_server_is_up(self):
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()  # port now refuses connections

        server_box = {}

        def start_late():
            time.sleep(0.2)
            server_box["server"] = FlakyServer(["ok"])
            # rebind on the advertised port
            server_box["server"]._listener.close()
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            conn, _ = listener.accept()
            rfile, wfile = conn.makefile("rb"), conn.makefile("wb")
            request = read_message(rfile)
            write_message(wfile, {"ok": True, "echo": request.get("op")})
            conn.close()
            listener.close()

        thread = threading.Thread(target=start_late, daemon=True)
        thread.start()
        client = ServeClient(
            "127.0.0.1", port, retries=8, backoff=0.05, backoff_max=0.2, retry_seed=1
        )
        assert client.ping()["echo"] == "ping"
        client.close()
        thread.join(timeout=10)

    def test_connect_gives_up_after_the_budget(self):
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        started = time.monotonic()
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", port, retries=2, backoff=0.01, retry_seed=0)
        assert time.monotonic() - started < 10

    def test_backoff_is_seeded_and_bounded(self):
        client_sleeps = []

        class Probe(ServeClient):
            def _connect(self_inner):
                self_inner._socket = None  # skip real connection

            def _backoff_sleep(self_inner, attempt):
                ceiling = min(
                    self_inner.backoff_max,
                    self_inner.backoff * (2 ** (attempt - 1)),
                )
                delay = self_inner._rng.uniform(0.0, ceiling)
                client_sleeps.append((attempt, delay, ceiling))

        probe = Probe("127.0.0.1", 1, retries=4, backoff=0.1, backoff_max=0.3, retry_seed=9)
        for attempt in range(1, 5):
            probe._backoff_sleep(attempt)
        assert all(0.0 <= delay <= ceiling for _, delay, ceiling in client_sleeps)
        assert [ceiling for _, _, ceiling in client_sleeps] == [0.1, 0.2, 0.3, 0.3]

        replay = Probe("127.0.0.1", 1, retries=4, backoff=0.1, backoff_max=0.3, retry_seed=9)
        first_run = list(client_sleeps)
        client_sleeps.clear()
        for attempt in range(1, 5):
            replay._backoff_sleep(attempt)
        assert client_sleeps == first_run

"""Unit tests for the sharded job queue, scheduler and worker pool."""

import time

import pytest

from repro import Session, TraceBuilder
from repro.trace.io import save_trace
from repro.serve.corpus import TraceCorpus
from repro.serve.jobs import AnalysisJob, JobQueue, JobStatus, Scheduler, job_id_of, shard_of
from repro.serve.pool import WorkerPool, WorkerTask, execute_task, run_batch
from repro.serve.results import ResultsStore


def make_job(digest: str, spec: str = "hb+tc") -> AnalysisJob:
    return AnalysisJob(job_id=job_id_of(digest, spec), digest=digest, spec=spec, trace_name="t")


@pytest.fixture
def racy_trace():
    # The x-writes race under every order (no sync between them); the
    # y-accesses are lock-protected and race-free.
    builder = TraceBuilder(name="racy")
    builder.write(1, "x").acquire(1, "l").write(1, "y").release(1, "l")
    builder.write(2, "x").acquire(2, "l").read(2, "y").release(2, "l")
    return builder.build()


@pytest.fixture
def trace_file(tmp_path, racy_trace):
    path = tmp_path / "racy.std.gz"
    save_trace(racy_trace, path, fmt="std")
    return path


class TestJobQueue:
    def test_cells_of_one_trace_share_a_shard(self):
        queue = JobQueue(num_shards=4)
        digest = "ab" * 32
        shards = {queue.push(make_job(digest, spec)) for spec in ("hb+tc", "hb+vc", "shb+tc")}
        assert shards == {shard_of(digest, 4)}
        assert len(queue) == 3

    def test_pop_round_robins_across_shards(self):
        queue = JobQueue(num_shards=4)
        # Two traces in different shards, several cells each: pops must
        # interleave the traces instead of draining one first.
        first, second = "00" * 32, "01" * 32
        assert shard_of(first, 4) != shard_of(second, 4)
        for spec in ("hb+tc", "hb+vc"):
            queue.push(make_job(first, spec))
            queue.push(make_job(second, spec))
        popped = [queue.pop().digest for _ in range(4)]
        assert popped[:2] != [first, first] and popped[:2] != [second, second]
        assert queue.pop() is None

    def test_depths_reports_per_shard_backlog(self):
        queue = JobQueue(num_shards=2)
        digest = "ff" * 32
        queue.push(make_job(digest))
        depths = queue.depths()
        assert sum(depths) == 1 and len(depths) == 2

    def test_shard_of_is_stable(self):
        digest = "abcdef00" + "00" * 28
        assert shard_of(digest, 8) == shard_of(digest, 8)
        assert 0 <= shard_of(digest, 8) < 8

    def test_queue_requires_a_shard(self):
        with pytest.raises(ValueError):
            JobQueue(num_shards=0)


class TestExecuteTask:
    def test_in_process_execution_matches_session(self, trace_file, racy_trace):
        task = WorkerTask(
            task_id="t", trace_path=str(trace_file), spec="shb+tc+detect", trace_name="racy"
        )
        payload = execute_task(task)
        direct = Session(["shb+tc+detect"]).run(racy_trace)["shb+tc+detect"]
        assert payload["events"] == len(racy_trace)
        assert payload["race_count"] == direct.detection.race_count
        assert payload["races"] == sorted(race.pair() for race in direct.detection.races)

    def test_spec_is_canonicalized(self, trace_file):
        payload = execute_task(
            WorkerTask(task_id="t", trace_path=str(trace_file), spec="TREE+HB+races")
        )
        assert payload["spec"] == "hb+tc+detect"

    def test_work_payload_included_when_requested(self, trace_file):
        payload = execute_task(
            WorkerTask(task_id="t", trace_path=str(trace_file), spec="hb+tc+work")
        )
        assert payload["work"]["entries_processed"] > 0


class TestWorkerPool:
    def test_batch_results_match_direct_sessions(self, trace_file, racy_trace):
        specs = ["hb+tc+detect", "shb+vc+detect"]
        tasks = [
            WorkerTask(task_id=spec, trace_path=str(trace_file), spec=spec) for spec in specs
        ]
        results = run_batch(tasks, workers=2, timeout=60)
        for spec in specs:
            payload, error, attempts = results[spec]
            assert error is None and attempts == 1
            direct = Session([spec]).run(racy_trace)[spec]
            assert payload["race_count"] == direct.detection.race_count
            assert payload["races"] == sorted(race.pair() for race in direct.detection.races)

    def test_crash_is_isolated_and_retried_once(self, trace_file):
        pool = WorkerPool(workers=2).start()
        try:
            results = pool.run_batch(
                [
                    WorkerTask(task_id="ok", trace_path=str(trace_file), spec="hb+tc+detect"),
                    WorkerTask(
                        task_id="boom", trace_path=str(trace_file), spec="hb+tc", fault="exit"
                    ),
                ],
                timeout=60,
            )
            payload, error, attempts = results["boom"]
            assert payload is None and "crashed" in error and attempts == 2
            payload, error, _ = results["ok"]
            assert error is None and payload["race_count"] == 1
            # the fleet healed itself after two crashes
            assert pool.alive_workers == 2
        finally:
            assert pool.close(timeout=10)

    def test_exceptions_fail_fast_without_retry(self, tmp_path):
        results = run_batch(
            [WorkerTask(task_id="gone", trace_path=str(tmp_path / "nope.std"), spec="hb+tc")],
            workers=1,
            timeout=60,
        )
        payload, error, attempts = results["gone"]
        assert payload is None and "FileNotFoundError" in error and attempts == 1

    def test_pool_restarts_after_close(self, trace_file):
        pool = WorkerPool(workers=1)
        task = WorkerTask(task_id="first", trace_path=str(trace_file), spec="hb+tc+detect")
        pool.start()
        try:
            assert pool.run_batch([task], timeout=60)["first"][0] is not None
            assert pool.close(timeout=10)
            pool.start()  # a closed pool must come back cleanly
            again = WorkerTask(task_id="second", trace_path=str(trace_file), spec="hb+tc+detect")
            payload, error, _ = pool.run_batch([again], timeout=60)["second"]
            assert error is None and payload["race_count"] == 1
        finally:
            pool.close(timeout=10)

    def test_pool_requires_start_and_unique_ids(self, trace_file):
        pool = WorkerPool(workers=1)
        task = WorkerTask(task_id="t", trace_path=str(trace_file), spec="hb+tc")
        with pytest.raises(RuntimeError, match="not started"):
            pool.submit(task)
        with pytest.raises(ValueError):
            WorkerPool(workers=0)


class TestPoolCounters:
    """The supervision tallies behind ``repro serve status`` — always on,
    registry or not (the bugfix: retries/crashes/timeouts used to be
    swallowed by the retry machinery and never surfaced)."""

    def test_clean_batch_counts_jobs_done(self, trace_file):
        pool = WorkerPool(workers=2).start()
        try:
            pool.run_batch(
                [
                    WorkerTask(task_id=spec, trace_path=str(trace_file), spec=spec)
                    for spec in ("hb+tc", "hb+vc", "shb+tc")
                ],
                timeout=60,
            )
            counters = pool.counters()
            assert counters["jobs_done"] == 3
            assert counters["crashes"] == 0 and counters["retries"] == 0
            assert counters["timeouts"] == 0 and counters["jobs_failed"] == 0
            stats = pool.worker_stats()
            assert sum(row["jobs_done"] for row in stats) == 3
            assert all(row["alive"] for row in stats)
            assert all(row["current_task"] is None for row in stats)
        finally:
            assert pool.close(timeout=10)

    def test_crash_retry_and_terminal_failure_are_counted(self, trace_file):
        pool = WorkerPool(workers=2).start()
        try:
            pool.run_batch(
                [
                    WorkerTask(task_id="ok", trace_path=str(trace_file), spec="hb+tc"),
                    WorkerTask(
                        task_id="boom", trace_path=str(trace_file), spec="hb+tc", fault="exit"
                    ),
                ],
                timeout=60,
            )
            counters = pool.counters()
            # fault="exit" crashes on both attempts: retried once, then
            # failed terminally.  The clean task completes normally.
            assert counters["jobs_done"] == 1
            assert counters["crashes"] == 2
            assert counters["retries"] == 1
            assert counters["jobs_failed"] == 1
        finally:
            assert pool.close(timeout=10)

    def test_deterministic_exception_counts_failed_without_retry(self, tmp_path):
        pool = WorkerPool(workers=1).start()
        try:
            pool.run_batch(
                [WorkerTask(task_id="gone", trace_path=str(tmp_path / "nope.std"), spec="hb+tc")],
                timeout=60,
            )
            counters = pool.counters()
            assert counters["jobs_failed"] == 1
            assert counters["retries"] == 0 and counters["crashes"] == 0
        finally:
            assert pool.close(timeout=10)

    def test_status_snapshot_carries_pool_counters(self, tmp_path, racy_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(racy_trace)
        scheduler = Scheduler(corpus, ResultsStore(), workers=1).start()
        try:
            scheduler.submit(entry.digest, ["hb+tc"])
            assert scheduler.wait_idle(timeout=60)
            snapshot = scheduler.status_snapshot()
            assert snapshot["pool"]["jobs_done"] == 1
            assert set(snapshot["pool"]) == {
                "jobs_done", "jobs_failed", "crashes", "timeouts", "retries",
                "callback_errors",
            }
        finally:
            scheduler.close()


class TestScheduler:
    def test_submit_runs_cells_and_folds_results(self, tmp_path, racy_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(racy_trace)
        results = ResultsStore(tmp_path / "results.json")
        scheduler = Scheduler(corpus, results, workers=2).start()
        try:
            queued, cached, _ = scheduler.submit(entry.digest, ["hb+tc+detect", "shb+vc+detect"])
            assert len(queued) == 2 and cached == []
            assert scheduler.wait_idle(timeout=60)
            counts = scheduler.counts()
            assert counts["done"] == 2 and counts["failed"] == 0
            direct = Session(["hb+tc+detect"]).run(racy_trace)["hb+tc+detect"]
            payload = results.get(entry.digest, "hb+tc+detect")
            assert payload["race_count"] == direct.detection.race_count
        finally:
            scheduler.close()

    def test_resubmission_is_idempotent(self, tmp_path, racy_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(racy_trace)
        results = ResultsStore(tmp_path / "results.json")
        scheduler = Scheduler(corpus, results, workers=1).start()
        try:
            scheduler.submit(entry.digest, ["hb+tc+detect"])
            assert scheduler.wait_idle(timeout=60)
            queued, cached, _ = scheduler.submit(entry.digest, ["hb+tc+detect"])
            assert queued == [] and cached == [job_id_of(entry.digest, "hb+tc+detect")]
        finally:
            scheduler.close()

    def test_specs_are_canonicalized_on_submit(self, tmp_path, racy_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(racy_trace)
        results = ResultsStore()
        scheduler = Scheduler(corpus, results, workers=1).start()
        try:
            scheduler.submit(entry.digest, ["TREE+HB+races"])
            assert scheduler.wait_idle(timeout=60)
            assert results.has(entry.digest, "hb+tc+detect")
        finally:
            scheduler.close()

    def test_status_snapshot_filters_by_job_ids(self, tmp_path, racy_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(racy_trace)
        scheduler = Scheduler(corpus, ResultsStore(), workers=1).start()
        try:
            queued, _, _ = scheduler.submit(entry.digest, ["hb+tc", "hb+vc"])
            assert scheduler.wait_idle(timeout=60)
            snapshot = scheduler.status_snapshot(job_ids=[queued[0], "nope:missing"])
            rows = snapshot["job_list"]
            assert [row["job_id"] for row in rows] == [queued[0]]  # unknown ids drop out
        finally:
            scheduler.close()

    def test_status_snapshot_shape(self, tmp_path, racy_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(racy_trace)
        scheduler = Scheduler(corpus, ResultsStore(), workers=1).start()
        try:
            scheduler.submit(entry.digest, ["hb+tc"])
            assert scheduler.wait_idle(timeout=60)
            snapshot = scheduler.status_snapshot(detail=True)
            assert snapshot["jobs"]["done"] == 1
            assert len(snapshot["shards"]) == 8
            job_row = snapshot["job_list"][0]
            assert job_row["status"] == JobStatus.DONE.value
            assert job_row["attempts"] == 1
        finally:
            scheduler.close()


class TestResultsStore:
    def test_record_and_reload(self, tmp_path):
        store = ResultsStore(tmp_path / "r.json")
        store.record("d" * 64, "hb+tc", {"race_count": 3})
        reopened = ResultsStore(tmp_path / "r.json")
        assert reopened.get("d" * 64, "hb+tc")["race_count"] == 3
        assert reopened.get("d" * 64, "hb+tc")["recorded_unix"] > 0

    def test_for_trace_filters_by_digest(self, tmp_path):
        store = ResultsStore()
        store.record("a" * 64, "hb+tc", {"race_count": 1})
        store.record("a" * 64, "hb+vc", {"race_count": 1})
        store.record("b" * 64, "hb+tc", {"race_count": 0})
        assert set(store.for_trace("a" * 64)) == {"hb+tc", "hb+vc"}
        assert len(store) == 3

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text('{"schema": "other/1", "results": {}}')
        with pytest.raises(ValueError, match="unsupported results schema"):
            ResultsStore(path)

    def test_discard_supports_forced_reruns(self, tmp_path):
        store = ResultsStore(tmp_path / "r.json")
        store.record("a" * 64, "hb+tc", {"race_count": 1})
        store.discard("a" * 64, "hb+tc")
        assert not store.has("a" * 64, "hb+tc")

    def test_throttled_persistence_flushes_on_demand(self, tmp_path):
        # A large interval means record() only dirties memory after the
        # first save; flush() must make the tail durable.
        store = ResultsStore(tmp_path / "r.json", persist_interval=3600.0)
        store.record("a" * 64, "hb+tc", {"race_count": 1})  # first save is immediate
        store.record("a" * 64, "hb+vc", {"race_count": 1})  # throttled: memory only
        assert len(ResultsStore(tmp_path / "r.json")) == 1
        store.flush()
        assert len(ResultsStore(tmp_path / "r.json")) == 2

    def test_scheduler_close_flushes_results(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        builder_trace = TraceBuilder(name="t").write(1, "x").write(2, "x").build()
        entry, _ = corpus.ingest(builder_trace)
        results = ResultsStore(tmp_path / "results.json", persist_interval=3600.0)
        scheduler = Scheduler(corpus, results, workers=1).start()
        scheduler.submit(entry.digest, ["hb+tc+detect", "hb+vc+detect"])
        assert scheduler.wait_idle(timeout=60)
        scheduler.close()
        reopened = ResultsStore(tmp_path / "results.json")
        assert len(reopened) == 2


class TestCallbackErrorAccounting:
    """A raising on_result callback must not kill the monitor thread, and
    the dropped completion must be visible in the counters (the bugfix:
    it used to vanish without a trace)."""

    def test_raising_callback_is_counted_and_survived(self, trace_file):
        failures = []

        def exploding_callback(task_id, payload, error, attempts):
            failures.append(task_id)
            raise RuntimeError("subscriber bug")

        pool = WorkerPool(workers=1, on_result=exploding_callback).start()
        try:
            tasks = [
                WorkerTask(task_id=f"t{i}", trace_path=str(trace_file), spec="hb+tc")
                for i in range(3)
            ]
            for task in tasks:
                pool.submit(task)
            assert pool.wait(timeout=60)
            # Callback delivery is asynchronous to wait(): give the
            # monitor a beat to drain the completion queue.
            deadline = time.monotonic() + 30
            while len(failures) < 3 and time.monotonic() < deadline:
                time.sleep(0.02)
            # Every completion reached the callback despite each raising.
            assert sorted(failures) == ["t0", "t1", "t2"]
            counters = pool.counters()
            assert counters["callback_errors"] == 3
            assert counters["jobs_done"] == 3
        finally:
            assert pool.close(timeout=10)

    def test_healthy_callback_counts_zero_errors(self, trace_file):
        seen = []
        pool = WorkerPool(
            workers=1, on_result=lambda *args: seen.append(args[0])
        ).start()
        try:
            pool.submit(WorkerTask(task_id="ok", trace_path=str(trace_file), spec="hb+tc"))
            assert pool.wait(timeout=60)
            deadline = time.monotonic() + 30
            while not seen and time.monotonic() < deadline:
                time.sleep(0.02)
            assert seen == ["ok"]
            assert pool.counters()["callback_errors"] == 0
        finally:
            assert pool.close(timeout=10)


class TestParallelTasks:
    """Segment-parallel execution through the serve surface."""

    @pytest.fixture
    def colf_trace_file(self, tmp_path):
        from repro.trace.colfmt import write_colf
        from util_traces import make_random_trace

        trace = make_random_trace(19, num_events=600, include_fork_join=True)
        path = tmp_path / "big.colf"
        with open(path, "wb") as handle:
            write_colf(iter(trace), handle, segment_events=64)
        return path

    def test_parallel_task_matches_sequential(self, colf_trace_file):
        sequential = execute_task(
            WorkerTask(task_id="s", trace_path=str(colf_trace_file), spec="hb+tc+detect")
        )
        parallel = execute_task(
            WorkerTask(
                task_id="p",
                trace_path=str(colf_trace_file),
                spec="hb+tc+detect",
                parallel=4,
            )
        )
        assert "parallel" in parallel and parallel["parallel"]["workers"] == 4
        assert "parallel" not in sequential
        assert parallel["events"] == sequential["events"]
        assert parallel["race_count"] == sequential["race_count"]
        assert parallel["races"] == sequential["races"]

    def test_parallel_on_text_trace_falls_back(self, trace_file):
        payload = execute_task(
            WorkerTask(
                task_id="t", trace_path=str(trace_file), spec="hb+tc+detect", parallel=4
            )
        )
        assert "parallel" not in payload
        assert payload["race_count"] == 1

    def test_scheduler_sets_parallel_for_large_colf_entries(self, tmp_path):
        from util_traces import make_random_trace

        corpus = TraceCorpus(tmp_path / "corpus")
        results = ResultsStore(tmp_path / "results.json")
        scheduler = Scheduler(
            corpus,
            results,
            workers=1,
            parallel_workers=4,
            parallel_threshold_events=100,
        )
        big, _ = corpus.ingest(make_random_trace(1, num_events=400), name="big")
        small, _ = corpus.ingest(make_random_trace(2, num_events=40), name="small")
        submitted = []
        scheduler.pool.submit = submitted.append  # capture without running
        scheduler.pool.start = lambda: scheduler.pool
        scheduler.start()
        scheduler.submit(big.digest, ["hb+tc+detect"])
        scheduler.submit(small.digest, ["hb+tc+detect"])
        by_digest = {task.task_id.split(":")[0]: task for task in submitted}
        assert len(submitted) == 2
        assert by_digest[big.digest[:12]].parallel == 4 or any(
            task.parallel == 4 for task in submitted
        )
        assert any(task.parallel == 1 for task in submitted)

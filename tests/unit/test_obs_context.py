"""Trace-context propagation: traceparent parsing, ambient scoping, stamping.

The distributed-tracing invariant (CONTRIBUTING: spans are parented,
never orphaned) rests on three mechanics pinned here: the ``traceparent``
wire form survives a parse/format round-trip, protocol messages carry
the context through ``encode_message``/``read_message`` untouched, and
:func:`active_context` prefers the live span over the attached context
so nested hops chain instead of flattening.
"""

import io
import threading

import pytest

from repro.obs.context import (
    FLAG_SAMPLED,
    MESSAGE_FIELD,
    TraceContext,
    active_context,
    attach_context,
    context_from_message,
    current_context,
    detach_context,
    new_context,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    stamp_message,
    use_context,
)
from repro.obs.tracing import configure_tracing, shutdown_tracing, span
from repro.serve.protocol import encode_message, read_message, write_message


@pytest.fixture(autouse=True)
def clean_tracing_state():
    shutdown_tracing()
    yield
    shutdown_tracing()


class TestTraceparentForm:
    def test_round_trip(self):
        ctx = new_context()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_wire_shape(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8, flags=1)
        assert ctx.to_traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"

    def test_unknown_version_is_accepted(self):
        parsed = parse_traceparent(f"cc-{'ab' * 16}-{'cd' * 8}-01")
        assert parsed.trace_id == "ab" * 16

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not a traceparent",
            f"00-{'ab' * 16}-{'cd' * 8}",  # missing flags
            f"00-{'AB' * 16}-{'cd' * 8}-01",  # uppercase hex
            f"00-{'ab' * 15}-{'cd' * 8}-01",  # short trace id
            f"00-{'0' * 32}-{'cd' * 8}-01",  # all-zero trace id
            f"00-{'ab' * 16}-{'0' * 16}-01",  # all-zero span id
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(ValueError):
            parse_traceparent(text)

    def test_non_string_raises(self):
        with pytest.raises(ValueError):
            parse_traceparent(12345)

    def test_sampled_flag(self):
        assert new_context().sampled
        assert not new_context(flags=0).sampled
        assert parse_traceparent(f"00-{'ab' * 16}-{'cd' * 8}-00").sampled is False

    def test_child_keeps_trace_changes_span(self):
        ctx = new_context()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.flags == ctx.flags


class TestIdGeneration:
    def test_shapes(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_span_ids_unique_across_threads(self):
        seen = []

        def grab():
            seen.extend(new_span_id() for _ in range(200))

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == len(seen)


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_context() is None
        assert active_context() is None

    def test_attach_detach(self):
        ctx = new_context()
        token = attach_context(ctx)
        try:
            assert current_context() is ctx
        finally:
            detach_context(token)
        assert current_context() is None

    def test_use_context_scopes(self):
        ctx = new_context()
        with use_context(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_use_context_none_is_noop(self):
        with use_context(None) as scoped:
            assert scoped is None
            assert current_context() is None

    def test_new_threads_start_empty(self):
        ctx = new_context()
        seen = []
        with use_context(ctx):
            thread = threading.Thread(target=lambda: seen.append(current_context()))
            thread.start()
            thread.join()
        assert seen == [None]

    def test_active_context_prefers_live_span(self, tmp_path):
        configure_tracing(tmp_path / "spans.jsonl")
        remote = new_context()
        with use_context(remote):
            with span("serve.op.submit") as op_span:
                active = active_context()
                # Inside the span the outgoing parent is the span itself,
                # not the remote context it parented under.
                assert active.trace_id == remote.trace_id
                assert active.span_id == op_span.sid
                assert active.span_id != remote.span_id
            assert active_context() == remote


class TestMessageStamping:
    def test_stamp_uses_attached_context(self):
        ctx = new_context()
        with use_context(ctx):
            payload = stamp_message({"op": "submit"})
        assert payload[MESSAGE_FIELD] == ctx.to_traceparent()
        assert context_from_message(payload) == ctx

    def test_stamp_without_context_leaves_payload_alone(self):
        payload = stamp_message({"op": "submit"})
        assert MESSAGE_FIELD not in payload

    def test_explicit_stamp_wins_and_is_not_restamped(self):
        pinned = new_context()
        ambient = new_context()
        payload = stamp_message({"op": "stream_feed"}, context=pinned)
        with use_context(ambient):
            stamp_message(payload)
        assert context_from_message(payload) == pinned

    def test_malformed_trace_field_is_ignored(self):
        assert context_from_message({"op": "submit", "trace": "garbage"}) is None
        assert context_from_message({"op": "submit", "trace": 7}) is None
        assert context_from_message({"op": "submit"}) is None

    def test_round_trips_through_protocol_encoding(self):
        ctx = new_context()
        payload = stamp_message({"op": "submit", "text": "w 1 x"}, context=ctx)
        decoded = read_message(io.BytesIO(encode_message(payload)))
        assert decoded[MESSAGE_FIELD] == ctx.to_traceparent()
        assert context_from_message(decoded) == ctx

    def test_round_trips_through_protocol_stream(self):
        ctx = new_context()
        buffer = io.BytesIO()
        write_message(buffer, stamp_message({"op": "analyze", "digest": "d"}, context=ctx))
        buffer.seek(0)
        assert context_from_message(read_message(buffer)) == ctx

"""Unit tests for the ``--version`` flag across every console script."""

import pytest

import repro
from repro.bench.cli import main as bench_main
from repro.cli import main as analyze_main
from repro.cli_util import package_version
from repro.experiments.cli import main as experiments_main


class TestPackageVersion:
    def test_matches_the_package_dunder(self):
        # Installed metadata (if present) and the in-tree __version__ are
        # kept in sync with pyproject.toml, so both sources agree.
        assert package_version() == repro.__version__

    def test_is_a_sane_version_string(self):
        parts = package_version().split(".")
        assert len(parts) >= 2 and all(part.isdigit() for part in parts[:2])


class TestVersionFlag:
    @pytest.mark.parametrize(
        "main, prog",
        [
            (analyze_main, "repro-analyze"),
            (bench_main, "repro-bench"),
            (experiments_main, "repro-experiments"),
        ],
    )
    def test_version_flag_prints_and_exits_zero(self, capsys, main, prog):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert prog in output
        assert package_version() in output

    def test_version_flag_wins_over_subcommand_dispatch(self, capsys):
        # `repro --version` is not a trace-file name or a subcommand.
        with pytest.raises(SystemExit) as excinfo:
            analyze_main(["--version"])
        assert excinfo.value.code == 0
        assert package_version() in capsys.readouterr().out

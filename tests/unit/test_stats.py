"""Unit tests for trace statistics (:mod:`repro.trace.stats`)."""

import pytest

from repro.trace import TraceBuilder, aggregate_statistics, compute_statistics
from repro.trace.stats import FieldSummary
from repro.trace.trace import Trace


@pytest.fixture
def mixed_trace() -> Trace:
    builder = TraceBuilder(name="mixed")
    builder.write(1, "x").read(2, "x").read(2, "y")
    builder.sync(1, "l1").sync(2, "l2")
    builder.fork(1, 3).read(3, "x").join(1, 3)
    return builder.build()


class TestComputeStatistics:
    def test_counts(self, mixed_trace):
        stats = compute_statistics(mixed_trace)
        assert stats.num_events == len(mixed_trace) == 10
        assert stats.num_threads == 3
        assert stats.num_variables == 2
        assert stats.num_locks == 2

    def test_event_kind_counts(self, mixed_trace):
        stats = compute_statistics(mixed_trace)
        assert stats.num_read_events == 3
        assert stats.num_write_events == 1
        assert stats.num_access_events == 4
        assert stats.num_sync_events == 6  # 4 lock ops + fork + join

    def test_fractions(self, mixed_trace):
        stats = compute_statistics(mixed_trace)
        assert stats.sync_fraction == pytest.approx(0.6)
        assert stats.access_fraction == pytest.approx(0.4)

    def test_name_defaults_for_unnamed_trace(self):
        stats = compute_statistics(Trace([]))
        assert stats.name == "<unnamed>"

    def test_empty_trace_fractions_are_zero(self):
        stats = compute_statistics(Trace([]))
        assert stats.sync_fraction == 0.0
        assert stats.access_fraction == 0.0

    def test_as_row_shape(self, mixed_trace):
        row = compute_statistics(mixed_trace).as_row()
        assert row["Benchmark"] == "mixed"
        assert row["N"] == 10
        assert row["T"] == 3
        assert row["M"] == 2
        assert row["L"] == 2
        assert row["Sync%"] == 60.0


class TestAggregate:
    def test_aggregate_over_two_traces(self, mixed_trace):
        other = TraceBuilder(name="tiny").write(1, "x").build()
        aggregate = aggregate_statistics(
            [compute_statistics(mixed_trace), compute_statistics(other)]
        )
        assert aggregate["Events"].minimum == 1
        assert aggregate["Events"].maximum == 10
        assert aggregate["Events"].mean == pytest.approx(5.5)
        assert aggregate["Threads"].maximum == 3

    def test_aggregate_has_all_paper_rows(self, mixed_trace):
        aggregate = aggregate_statistics([compute_statistics(mixed_trace)])
        assert set(aggregate) == {
            "Threads",
            "Locks",
            "Variables",
            "Events",
            "Sync. Events (%)",
            "R/W Events (%)",
        }

    def test_aggregate_of_empty_suite(self):
        aggregate = aggregate_statistics([])
        assert aggregate["Events"] == FieldSummary(0.0, 0.0, 0.0)

    def test_field_summary_as_dict(self):
        summary = FieldSummary(1.0, 3.0, 2.0)
        assert summary.as_dict() == {"min": 1.0, "max": 3.0, "mean": 2.0}

    def test_sync_percentages_are_scaled_to_100(self, mixed_trace):
        aggregate = aggregate_statistics([compute_statistics(mixed_trace)])
        assert aggregate["Sync. Events (%)"].mean == pytest.approx(60.0)

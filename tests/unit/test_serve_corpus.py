"""Unit tests for the content-addressed trace corpus (:mod:`repro.serve.corpus`)."""

import json

import pytest

from repro.trace import Trace, TraceBuilder
from repro.trace.io import save_trace
from repro.serve.corpus import INDEX_SCHEMA, CorpusError, TraceCorpus


@pytest.fixture
def sample_trace() -> Trace:
    builder = TraceBuilder(name="corpus-sample")
    builder.write(1, "x").acquire(1, "l").write(1, "y").release(1, "l")
    builder.acquire(2, "l").read(2, "y").release(2, "l").write(2, "x")
    return builder.build()


class TestIngest:
    def test_ingest_trace_records_stats(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, created = corpus.ingest(sample_trace, tags=("unit",))
        assert created
        assert entry.name == "corpus-sample"
        assert entry.events == len(sample_trace)
        assert entry.threads == 2
        assert entry.locks == 1
        assert entry.variables == 2
        assert entry.sync_events == 4
        assert entry.tags == ("unit",)
        assert len(corpus) == 1

    def test_stored_file_round_trips(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(sample_trace)
        restored = corpus.load(entry.digest)
        assert list(restored) == list(sample_trace)
        assert restored.name == "corpus-sample"

    def test_open_source_streams_the_stored_trace(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(sample_trace)
        source = corpus.open_source(entry.digest)
        assert list(source.events()) == list(sample_trace)
        assert source.events_emitted == len(sample_trace)

    def test_ingest_from_file_path(self, tmp_path, sample_trace):
        path = tmp_path / "t.std.gz"
        save_trace(sample_trace, path, fmt="std")
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, created = corpus.ingest(path)
        assert created and entry.events == len(sample_trace)
        assert entry.name == "t.std.gz"


class TestContentAddressing:
    def test_duplicate_submission_dedupes_to_one_entry(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        first, created_first = corpus.ingest(sample_trace)
        second, created_second = corpus.ingest(sample_trace)
        assert created_first and not created_second
        assert first.digest == second.digest
        assert len(corpus) == 1
        stored = list(corpus.traces_dir.glob("*.colf"))
        assert len(stored) == 1

    def test_digest_is_format_independent(self, tmp_path, sample_trace):
        std_path = tmp_path / "t.std"
        csv_path = tmp_path / "t.csv.gz"
        save_trace(sample_trace, std_path, fmt="std")
        save_trace(sample_trace, csv_path, fmt="csv")
        corpus = TraceCorpus(tmp_path / "corpus")
        from_std, _ = corpus.ingest(std_path)
        from_csv, created = corpus.ingest(csv_path)
        assert from_std.digest == from_csv.digest
        assert not created
        assert len(corpus) == 1

    def test_dedupe_merges_tags(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.ingest(sample_trace, tags=("a",))
        entry, _ = corpus.ingest(sample_trace, tags=("b",))
        assert entry.tags == ("a", "b")

    def test_different_traces_get_different_digests(self, tmp_path, sample_trace):
        other = TraceBuilder(name="other").write(1, "z").build()
        corpus = TraceCorpus(tmp_path / "corpus")
        first, _ = corpus.ingest(sample_trace)
        second, _ = corpus.ingest(other)
        assert first.digest != second.digest
        assert len(corpus) == 2


class TestEdgeCases:
    def test_corrupt_gz_rejected_with_clean_error(self, tmp_path):
        bad = tmp_path / "bad.std.gz"
        bad.write_bytes(b"this is not gzip data")
        corpus = TraceCorpus(tmp_path / "corpus")
        with pytest.raises(CorpusError, match="cannot ingest trace"):
            corpus.ingest(bad)
        assert len(corpus) == 0
        # no temp debris left behind
        assert list(corpus.traces_dir.iterdir()) == []

    def test_truncated_gz_rejected_with_clean_error(self, tmp_path, sample_trace):
        path = tmp_path / "t.std.gz"
        save_trace(sample_trace, path, fmt="std")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # chop the gzip stream
        corpus = TraceCorpus(tmp_path / "corpus")
        with pytest.raises(CorpusError, match="cannot ingest trace"):
            corpus.ingest(path)
        assert len(corpus) == 0

    def test_malformed_trace_lines_rejected(self, tmp_path):
        bad = tmp_path / "bad.std"
        bad.write_text("T1|w(x)\nnot a trace line\n")
        corpus = TraceCorpus(tmp_path / "corpus")
        with pytest.raises(CorpusError, match="cannot ingest trace"):
            corpus.ingest(bad)
        assert len(corpus) == 0

    def test_empty_trace_is_handled(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, created = corpus.ingest(Trace([], name="empty"))
        assert created
        assert entry.events == 0 and entry.threads == 0
        assert entry.sync_fraction == 0.0
        assert list(corpus.open_source(entry.digest).events()) == []

    def test_unknown_digest_raises(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        with pytest.raises(CorpusError, match="no trace with digest"):
            corpus.get("feedfacedeadbeef")


class TestIndex:
    def test_index_persists_across_reopen(self, tmp_path, sample_trace):
        first = TraceCorpus(tmp_path / "corpus")
        entry, _ = first.ingest(sample_trace, tags=("kept",))
        reopened = TraceCorpus(tmp_path / "corpus")
        assert len(reopened) == 1
        restored = reopened.get(entry.digest)
        assert restored.tags == ("kept",)
        assert restored.events == entry.events

    def test_index_schema_is_versioned(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.ingest(sample_trace)
        payload = json.loads(corpus.index_path.read_text())
        assert payload["schema"] == INDEX_SCHEMA

    def test_unsupported_index_schema_rejected(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        (root / "index.json").write_text(json.dumps({"schema": "bogus/9", "traces": {}}))
        with pytest.raises(CorpusError, match="unsupported corpus index schema"):
            TraceCorpus(root)

    def test_tag_queries(self, tmp_path, sample_trace):
        other = TraceBuilder(name="other").write(1, "z").build()
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.ingest(sample_trace, tags=("captured", "ci"))
        corpus.ingest(other, tags=("synthetic",))
        assert [e.name for e in corpus.entries(tag="captured")] == ["corpus-sample"]
        assert [e.name for e in corpus.entries(tag="synthetic")] == ["other"]
        assert len(corpus.entries()) == 2

    def test_remove_deletes_file_and_entry(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        entry, _ = corpus.ingest(sample_trace)
        path = corpus.trace_path(entry.digest)
        assert path.exists()
        corpus.remove(entry.digest)
        assert not path.exists()
        assert len(corpus) == 0
        assert len(TraceCorpus(tmp_path / "corpus")) == 0

    def test_summary_totals(self, tmp_path, sample_trace):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.ingest(sample_trace)
        summary = corpus.summary()
        assert summary["traces"] == 1
        assert summary["events"] == len(sample_trace)

"""Unit tests for the detectors and the high-level race-detection API."""

import pytest

from repro.analysis import (
    RaceDetector,
    ReversiblePairDetector,
    detect_races,
    find_races,
    has_race,
)
from repro.analysis.result import DetectionSummary, Race
from repro.clocks import ClockContext, VectorClock
from repro.trace import TraceBuilder
from repro.trace import event as ev


def make_clock(entries):
    context = ClockContext(threads=[1, 2, 3, 4])
    clock = VectorClock(context)
    for tid, value in entries.items():
        clock.increment(tid, value)
    return clock


class TestRaceDetectorUnit:
    def test_read_races_with_unordered_write(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_read(ev.read(2, "x", eid=1), make_clock({2: 1}))
        assert detector.summary.race_count == 1

    def test_read_does_not_race_with_ordered_write(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_read(ev.read(2, "x", eid=1), make_clock({1: 1, 2: 1}))
        assert detector.summary.race_count == 0

    def test_write_races_with_unordered_reads(self):
        detector = RaceDetector()
        detector.on_read(ev.read(1, "x", eid=0), make_clock({1: 1}))
        detector.on_read(ev.read(2, "x", eid=1), make_clock({2: 1}))
        detector.on_write(ev.write(3, "x", eid=2), make_clock({3: 1}))
        assert detector.summary.race_count == 2

    def test_write_write_race(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_write(ev.write(2, "x", eid=1), make_clock({2: 1}))
        assert detector.summary.race_count == 1

    def test_same_thread_accesses_never_race(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_write(ev.write(1, "x", eid=1), make_clock({1: 2}))
        detector.on_read(ev.read(1, "x", eid=2), make_clock({1: 3}))
        assert detector.summary.race_count == 0

    def test_different_variables_are_independent(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_write(ev.write(2, "y", eid=1), make_clock({2: 1}))
        assert detector.summary.race_count == 0

    def test_keep_races_false_still_counts(self):
        detector = RaceDetector(keep_races=False)
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_write(ev.write(2, "x", eid=1), make_clock({2: 1}))
        assert detector.summary.race_count == 1
        assert detector.summary.races == []

    def test_race_record_fields(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_write(ev.write(2, "x", eid=7), make_clock({2: 3}))
        race = detector.summary.races[0]
        assert race.variable == "x"
        assert race.prior_tid == 1 and race.prior_local_time == 1
        assert race.event_eid == 7 and race.event_tid == 2
        assert race.event_kind == "w"
        assert "x" in race.pair()

    def test_checks_are_counted(self):
        detector = RaceDetector()
        detector.on_write(ev.write(1, "x", eid=0), make_clock({1: 1}))
        detector.on_read(ev.read(2, "x", eid=1), make_clock({1: 1, 2: 1}))
        assert detector.summary.checks >= 2


class TestReversiblePairDetector:
    def test_unordered_conflicting_writes_are_reversible(self):
        detector = ReversiblePairDetector()
        first = ev.write(1, "x", eid=0)
        detector.on_access(first, make_clock({1: 1}))
        detector.after_access(first, make_clock({1: 1}))
        second = ev.write(2, "x", eid=1)
        detector.on_access(second, make_clock({2: 1}))
        assert detector.summary.race_count == 1

    def test_ordered_conflicting_writes_are_not_reversible(self):
        detector = ReversiblePairDetector()
        first = ev.write(1, "x", eid=0)
        detector.on_access(first, make_clock({1: 1}))
        detector.after_access(first, make_clock({1: 1}))
        second = ev.write(2, "x", eid=1)
        detector.on_access(second, make_clock({1: 1, 2: 1}))
        assert detector.summary.race_count == 0

    def test_read_checks_only_against_last_write(self):
        detector = ReversiblePairDetector()
        read = ev.read(1, "x", eid=0)
        detector.on_access(read, make_clock({1: 1}))
        detector.after_access(read, make_clock({1: 1}))
        second_read = ev.read(2, "x", eid=1)
        detector.on_access(second_read, make_clock({2: 1}))
        assert detector.summary.race_count == 0


class TestDetectionSummary:
    def test_racy_variables_deduplicates(self):
        summary = DetectionSummary()
        for eid in range(3):
            summary.races.append(
                Race(variable="x", prior_tid=1, prior_local_time=1, event_eid=eid, event_tid=2, event_kind="w")
            )
            summary.total_reported += 1
        assert summary.racy_variables == ["x"]
        assert summary.race_count == 3


class TestHighLevelAPI:
    def test_detect_races_hb(self, racy_trace):
        result = detect_races(racy_trace, partial_order="HB")
        assert result.detection.race_count >= 1

    def test_detect_races_shb(self, racy_trace):
        result = detect_races(racy_trace, partial_order="shb")
        assert result.partial_order == "SHB"

    def test_detect_races_rejects_maz(self, racy_trace):
        with pytest.raises(ValueError):
            detect_races(racy_trace, partial_order="MAZ")

    def test_find_races_returns_race_records(self, racy_trace):
        races = find_races(racy_trace)
        assert races and all(isinstance(race, Race) for race in races)

    def test_has_race(self, racy_trace, race_free_trace):
        assert has_race(racy_trace)
        assert not has_race(race_free_trace)

    def test_clock_class_can_be_overridden(self, racy_trace):
        result = detect_races(racy_trace, clock_class=VectorClock)
        assert result.clock_name == "VC"

"""Differential tests of :meth:`Session.checkpoint` / :meth:`Session.restore`.

The contract: a walk interrupted at *any* event boundary, serialized
through JSON (the on-disk snapshot format), restored into a fresh
Session and driven to the end must report exactly what the
uninterrupted walk reports — same races, in the same order, same check
counts, for every order/clock/detector combination the engine ships.
"""

import json

import pytest

from repro import TraceBuilder
from repro.api import Session


def mixed_trace():
    """Locks, fork/join-free contention, and str *and* int variables."""
    builder = TraceBuilder(name="mixed")
    for round_index in range(40):
        for tid in (1, 2, 3):
            builder.acquire(tid, "m").write(tid, "guarded").release(tid, "m")
            builder.write(tid, f"x{tid}")
            builder.read(tid, 1000 + round_index % 7)
            builder.write(tid, 1000 + round_index % 7)
    return builder.build()


def run_with_checkpoint(specs, trace, cut):
    """Run ``trace`` with a JSON-round-tripped checkpoint/restore at ``cut``."""
    events = list(trace)
    first = Session(specs)
    first.begin(name=trace.name or "t")
    first.feed_batch(events[:cut])
    state = json.loads(json.dumps(first.checkpoint()))
    resumed = Session(specs)
    resumed.restore(state)
    resumed.feed_batch(events[cut:])
    return resumed.finish()


def run_straight(specs, trace):
    session = Session(specs)
    session.begin(name=trace.name or "t")
    session.feed_batch(list(trace))
    return session.finish()


def summary_of(result):
    per_spec = {}
    for key, analysis in result:
        detection = analysis.detection
        per_spec[key] = {
            "races": [race.pair() for race in detection.races],
            "race_count": detection.race_count,
            "checks": detection.checks,
            "events": analysis.num_events,
        }
    return per_spec


ALL_SPECS = [
    "hb+tc+detect",
    "hb+vc+detect",
    "shb+tc+detect",
    "shb+vc+detect",
    "maz+tc+detect",
    "maz+vc+detect",
]


class TestCheckpointDifferential:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_every_engine_matches_uninterrupted(self, spec):
        trace = mixed_trace()
        straight = summary_of(run_straight([spec], trace))
        for cut in (1, len(trace) // 3, len(trace) // 2, len(trace) - 1):
            resumed = summary_of(run_with_checkpoint([spec], trace, cut))
            assert resumed == straight, f"{spec} diverged at cut={cut}"

    def test_multi_spec_session_round_trips_together(self):
        trace = mixed_trace()
        specs = ["hb+tc+detect", "shb+vc+detect", "maz+tc+detect"]
        straight = summary_of(run_straight(specs, trace))
        resumed = summary_of(run_with_checkpoint(specs, trace, len(trace) // 2))
        assert resumed == straight
        assert any(entry["race_count"] > 0 for entry in straight.values())

    def test_races_do_not_refire_on_restore(self):
        trace = mixed_trace()
        events = list(trace)
        fired = []
        session = Session(["shb+tc+detect"], on_race=fired.append)
        session.begin(name="t")
        session.feed_batch(events[: len(events) // 2])
        state = session.checkpoint()
        seen_before = len(fired)

        refired = []
        resumed = Session(["shb+tc+detect"], on_race=refired.append)
        resumed.restore(state)
        resumed.feed_batch(events[len(events) // 2 :])
        result = resumed.finish()
        # callbacks only fire for post-restore races, but the summary
        # still holds the full set
        detection = result["shb+tc+detect"].detection
        assert len(refired) == detection.race_count - seen_before
        assert detection.race_count >= seen_before

    def test_checkpoint_before_begin_is_an_error(self):
        with pytest.raises(RuntimeError):
            Session(["hb+tc"]).checkpoint()

    def test_restore_rejects_mismatched_specs(self):
        trace = mixed_trace()
        session = Session(["hb+tc+detect"])
        session.begin(name="t")
        session.feed_batch(list(trace)[:10])
        state = session.checkpoint()
        with pytest.raises(ValueError):
            Session(["shb+tc+detect"]).restore(state)

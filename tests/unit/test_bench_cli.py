"""Unit tests of the ``repro.bench`` subsystem: suites, runner, artifact, compare."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchConfig,
    compare_artifacts,
    format_report,
    load_artifact,
    make_artifact,
    record_clock_ops,
    replay_clock_ops,
    run_case,
    suite_cases,
    suite_names,
    validate_artifact,
    write_artifact,
)
from repro.bench.cli import main as bench_main
from repro.bench.kernels import OP_COPY_AUX, OP_INC, OP_JOIN_AUX
from repro.clocks import TreeClock, VectorClock
from repro.clocks.base import WorkCounter
from repro.trace import TraceBuilder


def small_trace():
    builder = TraceBuilder(name="bench-unit")
    builder.sync(1, "l")
    builder.write(1, "x")
    builder.sync(2, "l")
    builder.read(2, "x")
    builder.sync(3, "l")
    return builder.build()


class TestKernels:
    def test_record_hb_ops_cover_sync_events(self):
        log = record_clock_ops(small_trace(), order="hb")
        opcodes = [op[0] for op in log.ops]
        # One increment per event, one join per acquire, one copy per release.
        assert opcodes.count(OP_INC) == len(small_trace())
        assert opcodes.count(OP_JOIN_AUX) == 3
        assert opcodes.count(OP_COPY_AUX) == 3
        assert log.num_joins == 3
        assert log.num_copies == 3

    def test_record_shb_ops_add_variable_ops(self):
        hb_log = record_clock_ops(small_trace(), order="hb")
        shb_log = record_clock_ops(small_trace(), order="shb")
        assert len(shb_log) == len(hb_log) + 2  # one read + one write op

    def test_record_rejects_unknown_order(self):
        with pytest.raises(ValueError, match="unknown op-log order"):
            record_clock_ops(small_trace(), order="maz")

    def test_replay_is_clock_agnostic_and_counts_work(self):
        log = record_clock_ops(small_trace(), order="shb")
        snapshots = {}
        for clock_class in (TreeClock, VectorClock):
            counter = WorkCounter()
            clocks = replay_clock_ops(clock_class, log, counter=counter)
            snapshots[clock_class] = sorted(
                (clock.owner, tuple(sorted(clock.as_dict().items()))) for clock in clocks
            )
            assert counter.increments == len(small_trace())
        # The replay computes the same vector times with either clock.
        assert snapshots[TreeClock] == snapshots[VectorClock]


class TestSuites:
    def test_suite_names_are_stable(self):
        assert suite_names() == ["clocks", "obs", "parallel", "pipeline", "serve", "session"]

    def test_case_names_are_unique_and_stable(self):
        for suite in suite_names():
            cases = suite_cases(suite, events=100)
            names = [case.name for case in cases]
            assert len(names) == len(set(names))
            assert all(
                name.startswith(("clock_ops/", "session/", "serve/", "pipeline/", "obs/", "parallel/"))
                for name in names
            )

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark suite"):
            suite_cases("nope")

    def test_trace_files_extend_session_suite(self, tmp_path):
        path = tmp_path / "captured.std"
        cases = suite_cases("session", events=100, trace_files=[str(path)])
        assert any(case.params.get("path") == str(path) for case in cases)


class TestRunnerAndArtifact:
    def test_run_case_clock_ops(self):
        case = suite_cases("clocks", events=60)[0]
        result = run_case(case, BenchConfig(warmup=0, repeats=2))
        assert result.events == 60
        assert len(result.runs_ns) == 2
        assert result.best_ns == min(result.runs_ns)
        assert result.meta["ops"] > 60

    def test_run_case_session_collects_per_spec_times(self):
        case = suite_cases("session", events=60)[0]
        result = run_case(case, BenchConfig(warmup=1, repeats=2))
        assert set(result.sub) == set(case.params["specs"])
        for series in result.sub.values():
            assert len(series) == 2  # warmup walks are trimmed
        assert result.events == 60

    def test_run_case_parallel_session(self):
        cases = suite_cases("parallel", events=2500)
        anchor = next(c for c in cases if c.params["workers"] == 1)
        fanout = next(c for c in cases if c.params["workers"] == 4)
        config = BenchConfig(warmup=0, repeats=1)
        anchor_result = run_case(anchor, config)
        assert anchor_result.meta["measure"] == "sequential_cpu_ns"
        fanout_result = run_case(fanout, config)
        assert fanout_result.meta["measure"] == "critical_path_cpu_ns"
        assert fanout_result.meta["chunks"] >= 2
        assert fanout_result.meta["modeled_speedup"] > 0
        assert fanout_result.events == anchor_result.events

    def test_artifact_roundtrip_and_validation(self, tmp_path):
        config = BenchConfig(warmup=0, repeats=1)
        results = [run_case(case, config) for case in suite_cases("clocks", events=60)[:2]]
        artifact = make_artifact("clocks", results, config)
        assert validate_artifact(artifact) == []
        path = write_artifact(tmp_path / "BENCH_clocks.json", artifact)
        assert load_artifact(path)["schema"] == SCHEMA_VERSION

    def test_validation_rejects_broken_artifacts(self):
        assert validate_artifact([]) != []
        assert any("schema" in p for p in validate_artifact({"schema": "bogus/9"}))
        artifact = {
            "schema": SCHEMA_VERSION,
            "suite": "clocks",
            "created_unix": 1.0,
            "config": {},
            "results": [{"name": "a", "kind": "clock_ops", "events": 1, "repeats": 1,
                         "runs_ns": [5, 3], "best_ns": 4, "mean_ns": 4.0}],
        }
        assert any("best_ns" in p for p in validate_artifact(artifact))

    def test_bench_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BenchConfig(warmup=-1)
        with pytest.raises(ValueError):
            BenchConfig(repeats=0)


def _artifact_with(best_ns_by_name, suite="clocks"):
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "created_unix": 0.0,
        "machine": {},
        "config": {"warmup": 0, "repeats": 1},
        "results": [
            {"name": name, "kind": "clock_ops", "events": 100, "repeats": 1,
             "runs_ns": [best], "best_ns": best, "mean_ns": float(best)}
            for name, best in best_ns_by_name.items()
        ],
    }


class TestCompare:
    def test_identical_artifacts_are_ok(self):
        artifact = _artifact_with({"a": 1_000_000, "b": 2_000_000})
        report = compare_artifacts(artifact, artifact, threshold_pct=10)
        assert report.ok
        assert not report.regressions
        assert "comparison OK" in format_report(report)

    def test_injected_slowdown_is_flagged(self):
        baseline = _artifact_with({"a": 1_000_000, "b": 2_000_000})
        current = _artifact_with({"a": 1_000_000, "b": 5_000_000})
        report = compare_artifacts(baseline, current, threshold_pct=10)
        assert not report.ok
        assert [diff.name for diff in report.regressions] == ["b"]
        assert report.regressions[0].ratio == pytest.approx(2.5)
        assert "REGRESSION" in format_report(report)

    def test_noise_floor_suppresses_tiny_cases(self):
        baseline = _artifact_with({"a": 1_000})
        current = _artifact_with({"a": 10_000})  # 10x, but below min_ns
        report = compare_artifacts(baseline, current, threshold_pct=10, min_ns=50_000)
        assert report.ok

    def test_missing_and_new_cases_reported(self):
        baseline = _artifact_with({"a": 1_000_000, "gone": 1_000_000})
        current = _artifact_with({"a": 1_000_000, "fresh": 1_000_000})
        report = compare_artifacts(baseline, current)
        assert report.missing == ["gone"]
        assert report.new_cases == ["fresh"]
        assert report.ok  # missing alone fails only in --strict


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "clock_ops/single_lock-t10/TC" in out

    def test_compare_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(_artifact_with({"a": 1_000_000})))
        current.write_text(json.dumps(_artifact_with({"a": 1_000_000})))
        assert bench_main(["compare", str(baseline), str(current)]) == 0
        current.write_text(json.dumps(_artifact_with({"a": 9_000_000})))
        assert bench_main(["compare", str(baseline), str(current), "--threshold", "50"]) == 1
        # A generous threshold tolerates the same slowdown.
        assert bench_main(["compare", str(baseline), str(current), "--threshold", "5000"]) == 0
        capsys.readouterr()

    def test_compare_json_report(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(_artifact_with({"a": 1_000_000})))
        current.write_text(json.dumps(_artifact_with({"a": 4_000_000})))
        assert bench_main(["compare", str(baseline), str(current), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["regressions"] == ["a"]

    def test_compare_strict_fails_on_missing(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(_artifact_with({"a": 1_000_000, "gone": 1_000_000})))
        current.write_text(json.dumps(_artifact_with({"a": 1_000_000})))
        assert bench_main(["compare", str(baseline), str(current)]) == 0
        assert bench_main(["compare", str(baseline), str(current), "--strict"]) == 1
        capsys.readouterr()

    def test_compare_rejects_garbage_inputs(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_artifact_with({"a": 1_000_000})))
        assert bench_main(["compare", str(bad), str(good)]) == 2
        assert bench_main(["compare", str(tmp_path / "absent.json"), str(good)]) == 2
        capsys.readouterr()

    def test_run_rejects_bad_knobs(self, capsys):
        assert bench_main(["run", "--events", "5"]) == 2
        assert bench_main(["run", "--repeats", "0"]) == 2
        with pytest.raises(SystemExit):
            bench_main(["run", "--threads", "abc"])
        capsys.readouterr()

"""Unit tests for the HB analysis (:mod:`repro.analysis.hb`)."""

import pytest

from repro.analysis import GraphOrder, HBAnalysis, compute_hb
from repro.clocks import TreeClock, VectorClock
from repro.trace import TraceBuilder


@pytest.mark.parametrize("clock_class", [TreeClock, VectorClock])
class TestHBTimestamps:
    def test_thread_order_is_respected(self, clock_class):
        trace = TraceBuilder().read(1, "x").read(1, "x").read(1, "x").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps == [{1: 1}, {1: 2}, {1: 3}]

    def test_release_acquire_creates_ordering(self, clock_class):
        trace = TraceBuilder().sync(1, "l").sync(2, "l").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        # The acquire of t2 (event 2) happens after the release of t1 (event 1).
        assert result.timestamps[2] == {1: 2, 2: 1}
        assert result.timestamps[3] == {1: 2, 2: 2}

    def test_unrelated_locks_do_not_order(self, clock_class):
        trace = TraceBuilder().sync(1, "l").sync(2, "m").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[2] == {2: 1}
        assert result.timestamps[3] == {2: 2}

    def test_reads_and_writes_do_not_order_in_hb(self, clock_class):
        trace = TraceBuilder().write(1, "x").read(2, "x").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[1] == {2: 1}

    def test_transitive_ordering_through_two_locks(self, clock_class):
        trace = TraceBuilder().sync(1, "a").sync(2, "a").sync(2, "b").sync(3, "b").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        # Thread 3's final event must know thread 1's release through t2.
        assert result.timestamps[-1][1] == 2

    def test_fork_orders_parent_before_child(self, clock_class):
        trace = TraceBuilder().write(1, "x").fork(1, 2).read(2, "x").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[2] == {1: 2, 2: 1}

    def test_join_orders_child_before_parent(self, clock_class):
        trace = TraceBuilder().fork(1, 2).write(2, "x").join(1, 2).read(1, "x").build()
        result = HBAnalysis(clock_class, capture_timestamps=True).run(trace)
        assert result.timestamps[3][2] == 1

    def test_matches_graph_oracle(self, clock_class, figure11_trace):
        result = HBAnalysis(clock_class, capture_timestamps=True).run(figure11_trace)
        assert result.timestamps == GraphOrder(figure11_trace, "HB").timestamps()


class TestFigure11WorkedExample:
    """Checks against the worked example of Appendix B (Figure 11)."""

    def test_thread2_vector_time_after_e13(self, figure11_trace):
        analysis = HBAnalysis(TreeClock, capture_timestamps=True)
        result = analysis.run(figure11_trace)
        # e13 is the acquire of l1 by thread 2 (event id 12).
        assert result.timestamps[12] == {2: 1, 3: 4, 1: 2, 5: 2}

    def test_thread2_vector_time_after_e15(self, figure11_trace):
        result = HBAnalysis(TreeClock, capture_timestamps=True).run(figure11_trace)
        # e15 is the acquire of l2 by thread 2 (event id 14).
        assert result.timestamps[14] == {2: 3, 3: 4, 1: 2, 5: 2, 4: 2}

    def test_thread2_tree_structure_after_run(self, figure11_trace):
        analysis = HBAnalysis(TreeClock)
        analysis.run(figure11_trace)
        clock = analysis.thread_clocks[2]
        assert clock.validate_structure() == []
        assert clock.root.tid == 2
        # The subtree learned via lock l2 (rooted at thread 4) was attached
        # last, at thread 2's local time 3, so it heads the child list.
        first_child = clock.root.first_child
        assert first_child.tid == 4
        assert first_child.aclk == 3
        # The subtree learned via lock l1 is rooted at thread 3 and carries
        # threads 1 and 5 transitively.
        second_child = first_child.next_sibling
        assert second_child.tid == 3
        assert {node.tid for node in second_child.children()} == {1, 5}

    def test_lock_clock_roots_track_last_releasing_thread(self, figure11_trace):
        analysis = HBAnalysis(TreeClock)
        analysis.run(figure11_trace)
        assert analysis.lock_clocks["l1"].root.tid == 2
        assert analysis.lock_clocks["l2"].root.tid == 2
        assert analysis.lock_clocks["l3"].root.tid == 4


class TestHBRaceDetection:
    def test_detects_race_on_unprotected_variable(self, racy_trace):
        result = HBAnalysis(TreeClock, detect=True).run(racy_trace)
        assert result.detection is not None
        assert result.detection.race_count >= 1
        assert "x" in result.detection.racy_variables

    def test_no_race_when_lock_protected(self, race_free_trace):
        result = HBAnalysis(TreeClock, detect=True).run(race_free_trace)
        assert result.detection.race_count == 0

    def test_detection_agrees_between_clock_classes(self, racy_trace):
        tc = HBAnalysis(TreeClock, detect=True).run(racy_trace)
        vc = HBAnalysis(VectorClock, detect=True).run(racy_trace)
        assert tc.detection.race_count == vc.detection.race_count

    def test_no_detection_summary_without_detect_flag(self, racy_trace):
        result = HBAnalysis(TreeClock).run(racy_trace)
        assert result.detection is None


class TestResultMetadata:
    def test_result_identifies_clock_and_order(self, racy_trace):
        result = HBAnalysis(TreeClock).run(racy_trace)
        assert result.partial_order == "HB"
        assert result.clock_name == "TC"
        assert result.num_events == len(racy_trace)
        assert result.num_threads == 2
        assert result.elapsed_seconds >= 0.0

    def test_timestamp_of_requires_capture(self, racy_trace):
        result = HBAnalysis(TreeClock).run(racy_trace)
        with pytest.raises(ValueError):
            result.timestamp_of(0)
        captured = HBAnalysis(TreeClock, capture_timestamps=True).run(racy_trace)
        assert captured.timestamp_of(0) == {1: 1}

    def test_summary_row_contains_core_fields(self, racy_trace):
        result = HBAnalysis(TreeClock, count_work=True, detect=True).run(racy_trace)
        row = result.summary()
        assert row["partial_order"] == "HB"
        assert row["clock"] == "TC"
        assert "entries_processed" in row and "races" in row

    def test_compute_hb_convenience_defaults_to_tree_clock(self, racy_trace):
        result = compute_hb(racy_trace)
        assert result.clock_name == "TC"
        result_vc = compute_hb(racy_trace, clock_class=VectorClock)
        assert result_vc.clock_name == "VC"

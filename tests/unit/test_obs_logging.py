"""Unit tests for structured logging and process introspection
(:mod:`repro.obs.logging`, :mod:`repro.obs.proc`)."""

import io
import json
import logging
import os

import pytest

from repro.obs.logging import (
    LEVELS,
    ROOT_LOGGER,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.proc import rss_bytes, sample_rss


@pytest.fixture(autouse=True)
def restore_root_logger():
    """Leave the package root logger unconfigured after each test."""
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_namespaces_bare_names(self):
        assert get_logger("serve").name == "repro.serve"

    def test_keeps_package_qualified_names(self):
        assert get_logger("repro.serve.pool").name == "repro.serve.pool"
        assert get_logger("repro").name == "repro"


class TestConfigureLogging:
    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")
        assert "warning" in LEVELS

    def test_human_mode_shape(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger("serve").info("listening on %s", "127.0.0.1:7341")
        assert stream.getvalue() == "info repro.serve: listening on 127.0.0.1:7341\n"

    def test_json_mode_carries_extra_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", json_mode=True, stream=stream)
        get_logger("serve").info("job done", extra={"job_id": 7, "spec": "hb+tc"})
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "repro.serve"
        assert record["message"] == "job done"
        assert record["job_id"] == 7 and record["spec"] == "hb+tc"
        assert isinstance(record["ts"], float)

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="error", stream=stream)
        get_logger("serve").warning("dropped")
        assert stream.getvalue() == ""

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        configure_logging(level="info", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_json_mode_records_exceptions(self):
        stream = io.StringIO()
        configure_logging(level="error", json_mode=True, stream=stream)
        try:
            raise ValueError("bad")
        except ValueError:
            get_logger("serve").exception("handler failed")
        record = json.loads(stream.getvalue())
        assert "ValueError: bad" in record["exception"]


class TestProc:
    def test_rss_of_this_process_is_positive(self):
        value = rss_bytes()
        assert value is not None and value > 0

    def test_rss_of_vanished_pid_is_none(self):
        # A pid beyond pid_max never exists; the sampler must not raise.
        assert rss_bytes(2**31 - 1) is None

    def test_sample_rss_sets_the_gauge(self):
        registry = MetricsRegistry(enabled=True)
        value = sample_rss(registry, gauge="pool.worker_rss_bytes", worker="0")
        assert value is not None
        gauge = registry.get("pool.worker_rss_bytes", worker="0")
        assert gauge is not None and gauge.value == value

    def test_sample_rss_of_vanished_pid_leaves_gauge_unset(self):
        registry = MetricsRegistry(enabled=True)
        assert sample_rss(registry, pid=2**31 - 1, gauge="g") is None
        assert registry.get("g") is None

    def test_explicit_self_pid_matches_default(self):
        ours = rss_bytes(os.getpid())
        assert ours is not None and ours > 0

"""Unit tests for the experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_default_options(self):
        args = build_parser().parse_args(["table2"])
        assert args.scale == 1.0
        assert args.repetitions == 1
        assert args.orders == ["MAZ", "SHB", "HB"]

    def test_custom_options(self):
        args = build_parser().parse_args(
            ["figure10", "--events", "500", "--threads", "4", "8", "--scale", "0.5"]
        )
        assert args.events == 500
        assert args.threads == [4, 8]
        assert args.scale == 0.5

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_single_experiment(self, capsys):
        exit_code = main(["table1", "--scale", "0.1", "--max-profiles", "3", "--repetitions", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "table1" in output and "Threads" in output

    def test_run_figure10_with_custom_sweep(self, capsys):
        exit_code = main(
            ["figure10", "--events", "200", "--threads", "3", "--repetitions", "1"]
        )
        assert exit_code == 0
        assert "single_lock" in capsys.readouterr().out

    def test_orders_can_be_restricted(self, capsys):
        exit_code = main(
            ["table2", "--scale", "0.1", "--max-profiles", "2", "--orders", "HB", "--repetitions", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "HB" in output and "MAZ" not in output.split("Configuration")[1].splitlines()[0]

"""Unit tests for :class:`repro.api.QueueSource` (producer → session handoff)."""

import threading

import pytest

from repro import QueueSource, Session, TraceBuilder
from repro.api.sources import as_event_source


@pytest.fixture
def racy_trace():
    builder = TraceBuilder(name="q-racy")
    builder.write(1, "x").acquire(1, "l").write(1, "y").release(1, "l")
    builder.write(2, "x").acquire(2, "l").read(2, "y").release(2, "l")
    return builder.build()


class TestQueueSource:
    def test_threaded_walk_matches_in_memory_walk(self, racy_trace):
        source = QueueSource(name="q-racy")
        session = Session(["shb+tc+detect", "shb+vc+detect"])
        walk = threading.Thread(target=lambda: setattr(source, "_result", session.run(source)))
        walk.start()
        for event in racy_trace:
            source.put(event)
        source.close()
        walk.join(10)
        assert not walk.is_alive()
        streamed = source._result
        direct = Session(["shb+tc+detect", "shb+vc+detect"]).run(racy_trace)
        assert streamed.num_events == len(racy_trace)
        for key, result in direct:
            assert streamed[key].detection.race_count == result.detection.race_count
        assert source.events_emitted == len(racy_trace)

    def test_races_surface_while_producer_is_still_sending(self, racy_trace):
        races = []
        ready = threading.Event()
        source = QueueSource()
        session = Session(["shb+tc+detect"], on_race=lambda race: (races.append(race), ready.set()))
        walk = threading.Thread(target=lambda: session.run(source))
        walk.start()
        events = list(racy_trace)
        for event in events[:-1]:  # hold the last event back
            source.put(event)
        # the x-write race is complete after the second w(x): it must be
        # reported before the stream is closed
        assert ready.wait(10)
        assert races
        source.put(events[-1])
        source.close()
        walk.join(10)

    def test_bounded_queue_applies_backpressure(self, racy_trace):
        import queue as queue_module

        source = QueueSource(maxsize=1)
        events = iter(racy_trace)
        source.put(next(events))  # fills the queue; no consumer running
        with pytest.raises(queue_module.Full):
            source.put(next(events), timeout=0.05)

    def test_put_after_close_raises(self, racy_trace):
        source = QueueSource()
        source.close()
        assert source.closed
        with pytest.raises(RuntimeError, match="closed QueueSource"):
            source.put(next(iter(racy_trace)))

    def test_close_is_idempotent(self):
        source = QueueSource()
        source.close()
        source.close()
        assert list(source.events()) == []

    def test_as_event_source_passthrough(self):
        source = QueueSource()
        assert as_event_source(source) is source

    def test_threads_unknown_upfront(self):
        assert QueueSource().threads() is None

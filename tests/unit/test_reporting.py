"""Unit tests for the experiment reporting helpers."""

import pytest

from repro.experiments.reporting import (
    ExperimentReport,
    ascii_bar,
    format_cell,
    format_table,
    histogram_rows,
)


class TestFormatting:
    def test_format_cell_float(self):
        assert format_cell(1.23456) == "1.235"

    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_format_cell_other(self):
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"

    def test_format_table_aligns_columns(self):
        table = format_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_format_table_handles_extra_columns_in_rows(self):
        table = format_table(["a"], [[1, 2, 3]])
        assert "3" in table


class TestAsciiBarAndHistogram:
    def test_ascii_bar_scales(self):
        assert ascii_bar(5, 10, width=10) == "#####"
        assert ascii_bar(0, 10, width=10) == ""
        assert ascii_bar(10, 10, width=10) == "#" * 10

    def test_ascii_bar_with_zero_maximum(self):
        assert ascii_bar(3, 0) == ""

    def test_histogram_rows_bucketing(self):
        rows = histogram_rows([1.0, 1.5, 2.5, 10.0], [1, 2, 5, 10])
        counts = [row[1] for row in rows]
        assert counts == [2, 1, 1]

    def test_histogram_values_beyond_last_edge_land_in_last_bin(self):
        rows = histogram_rows([100.0], [1, 2, 5])
        assert rows[-1][1] == 1

    def test_histogram_requires_two_edges(self):
        with pytest.raises(ValueError):
            histogram_rows([1.0], [1])


class TestExperimentReport:
    def make_report(self) -> ExperimentReport:
        return ExperimentReport(
            experiment="table2",
            title="demo",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            summary={"mean": 1.5},
            notes=["a note"],
        )

    def test_render_contains_everything(self):
        text = self.make_report().render()
        assert "table2" in text and "demo" in text
        assert "2.500" in text
        assert "mean: 1.500" in text
        assert "note: a note" in text

    def test_render_without_rows(self):
        report = ExperimentReport(experiment="x", title="t", headers=["h"])
        assert "x: t" in report.render()

    def test_as_dict_roundtrip_shape(self):
        data = self.make_report().as_dict()
        assert data["experiment"] == "table2"
        assert data["rows"] == [[1, 2.5]]
        assert data["summary"] == {"mean": 1.5}
        assert data["notes"] == ["a note"]

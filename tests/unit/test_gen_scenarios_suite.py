"""Unit tests for the scalability scenarios and the benchmark suite."""

import pytest

from repro.gen import (
    SCENARIOS,
    BenchmarkProfile,
    ScalabilityPoint,
    default_suite,
    families,
    fifty_locks_skewed_trace,
    generate_suite,
    get_profile,
    pairwise_communication_trace,
    profile_names,
    scalability_sweep,
    single_lock_trace,
    star_topology_trace,
)
from repro.trace import compute_statistics, is_well_formed


class TestScenarios:
    def test_scenarios_registry_has_paper_cases(self):
        assert set(SCENARIOS) == {
            "single_lock",
            "fifty_locks_skewed",
            "star_topology",
            "pairwise_communication",
        }

    def test_single_lock_uses_one_lock(self):
        trace = single_lock_trace(8, 400)
        assert len(trace.locks) == 1
        assert is_well_formed(trace)

    def test_fifty_locks_has_at_most_fifty_locks(self):
        trace = fifty_locks_skewed_trace(12, 2000)
        assert 1 < len(trace.locks) <= 50

    def test_star_topology_lock_count_tracks_clients(self):
        trace = star_topology_trace(10, 1500)
        assert len(trace.locks) <= 9

    def test_pairwise_lock_count_tracks_pairs(self):
        trace = pairwise_communication_trace(6, 1500)
        assert len(trace.locks) <= 15

    def test_scenario_traces_are_sync_only(self):
        for make in (single_lock_trace, star_topology_trace):
            stats = compute_statistics(make(6, 300))
            assert stats.sync_fraction == 1.0

    def test_thread_count_is_respected(self):
        trace = single_lock_trace(25, 2000)
        assert trace.num_threads <= 25

    def test_traces_are_deterministic_per_seed(self):
        assert single_lock_trace(6, 300, seed=1) == single_lock_trace(6, 300, seed=1)
        assert single_lock_trace(6, 300, seed=1) != single_lock_trace(6, 300, seed=2)

    def test_scalability_point_generates_named_trace(self):
        point = ScalabilityPoint("star_topology", num_threads=8, num_events=200, seed=0)
        trace = point.generate()
        assert "star-topology" in trace.name

    def test_scalability_sweep_grid(self):
        points = scalability_sweep(["single_lock"], thread_counts=(4, 8), num_events=100)
        assert len(points) == 2
        assert {point.num_threads for point in points} == {4, 8}

    def test_scalability_sweep_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            scalability_sweep(["bogus"])


class TestSuite:
    def test_default_suite_is_nonempty(self):
        suite = default_suite()
        assert len(suite) >= 25

    def test_profiles_have_unique_names(self):
        names = profile_names()
        assert len(names) == len(set(names))

    def test_scale_changes_event_counts(self):
        small = default_suite(scale=0.5)[0]
        large = default_suite(scale=2.0)[0]
        assert large.config.num_events > small.config.num_events

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            default_suite(scale=0)

    def test_family_filter(self):
        suite = default_suite(families=["java-small"])
        assert suite and all(profile.family == "java-small" for profile in suite)

    def test_max_profiles_limits_suite(self):
        assert len(default_suite(max_profiles=5)) == 5

    def test_get_profile_and_unknown(self):
        profile = get_profile("account-like")
        assert isinstance(profile, BenchmarkProfile)
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_families_listed(self):
        listed = families()
        assert "java-small" in listed and "openmp-app" in listed

    def test_generate_suite_produces_named_well_formed_traces(self):
        profiles = default_suite(scale=0.2, max_profiles=4)
        traces = generate_suite(profiles)
        assert [trace.name for trace in traces] == [profile.name for profile in profiles]
        assert all(is_well_formed(trace) for trace in traces)

    def test_profile_generate_matches_profile_name(self):
        profile = default_suite(scale=0.2, max_profiles=1)[0]
        assert profile.generate().name == profile.name

    def test_suite_spans_thread_counts(self):
        suite = default_suite()
        thread_counts = [profile.config.num_threads for profile in suite]
        assert min(thread_counts) <= 5
        assert max(thread_counts) >= 100

    def test_suite_spans_sync_fractions(self):
        suite = default_suite()
        fractions = [profile.config.sync_fraction for profile in suite]
        assert min(fractions) <= 0.05
        assert max(fractions) >= 0.4

"""Unit tests for the ``repro-analyze`` command-line interface."""

import pytest

from repro.cli import build_parser, demo_trace, main
from repro.trace import save_trace


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace.std"])
        assert args.order == "HB" and args.clock == "TC"
        assert args.format is None  # inferred from the file suffix at load time

    def test_demo_needs_no_trace_argument(self):
        args = build_parser().parse_args(["--demo"])
        assert args.demo and args.trace is None

    def test_rejects_unknown_order(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace.std", "--order", "WCP"])


class TestDemoTrace:
    def test_demo_trace_has_race(self):
        from repro import has_race

        assert has_race(demo_trace())


class TestMain:
    def test_requires_trace_or_demo(self):
        with pytest.raises(SystemExit):
            main([])

    def test_demo_run_with_races(self, capsys):
        assert main(["--demo", "--races"]) == 0
        output = capsys.readouterr().out
        assert "HB computed with TC" in output
        assert "races:" in output

    def test_demo_run_with_timestamps_and_limit(self, capsys):
        assert main(["--demo", "--timestamps", "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert output.count("[0]") == 1
        assert "[5]" not in output

    def test_demo_run_with_work_and_stats(self, capsys):
        assert main(["--demo", "--work", "--stats", "--clock", "VC", "--order", "SHB"]) == 0
        output = capsys.readouterr().out
        assert "SHB computed with VC" in output
        assert "entries processed" in output
        assert "Benchmark" in output

    def test_demo_show_clocks_renders_trees(self, capsys):
        assert main(["--demo", "--show-clocks"]) == 0
        output = capsys.readouterr().out
        assert "clock of thread t1" in output
        assert "clk=" in output

    def test_maz_detector_label(self, capsys):
        assert main(["--demo", "--order", "MAZ", "--races"]) == 0
        assert "reversible pairs:" in capsys.readouterr().out

    def test_analyze_trace_file(self, tmp_path, capsys, racy_trace):
        path = tmp_path / "trace.std"
        save_trace(racy_trace, path)
        assert main([str(path), "--races"]) == 0
        output = capsys.readouterr().out
        assert "races: 1" in output

    def test_analyze_csv_trace_file(self, tmp_path, capsys, race_free_trace):
        path = tmp_path / "trace.csv"
        save_trace(race_free_trace, path, fmt="csv")
        assert main([str(path), "--format", "csv", "--races"]) == 0
        assert "races: 0" in capsys.readouterr().out

    def test_format_inferred_from_suffix(self, tmp_path, capsys, racy_trace):
        path = tmp_path / "trace.csv.gz"
        save_trace(racy_trace, path, fmt="csv")
        assert main([str(path), "--races"]) == 0  # no --format needed
        assert "races: 1" in capsys.readouterr().out

    def test_ill_formed_trace_produces_warning(self, tmp_path, capsys):
        path = tmp_path / "bad.std"
        path.write_text("T1|rel(l)|0\n", encoding="utf-8")
        assert main([str(path)]) == 0
        assert "not well-formed" in capsys.readouterr().out


class TestSpecsAndJson:
    """The session-API surface of the CLI: --spec, --json, --stream."""

    def test_multiple_specs_share_one_walk(self, tmp_path, capsys, racy_trace):
        path = tmp_path / "trace.std"
        save_trace(racy_trace, path)
        assert main([str(path), "--spec", "hb+tc+detect", "--spec", "hb+vc+detect"]) == 0
        output = capsys.readouterr().out
        assert "HB computed with TC" in output
        assert "HB computed with VC" in output
        assert output.count("races: 1") == 2

    def test_spec_json_end_to_end(self, tmp_path, capsys, racy_trace):
        import json

        path = tmp_path / "trace.std"
        save_trace(racy_trace, path)
        assert main([str(path), "--spec", "hb+tc", "--spec", "hb+vc", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert sorted(payload["specs"]) == ["hb+tc", "hb+vc"]
        assert payload["events"] == len(racy_trace)
        for spec_payload in payload["specs"].values():
            assert spec_payload["elapsed_ns"] > 0
        assert "trace" in captured.err  # diagnostics moved to stderr

    def test_json_includes_races_and_work(self, capsys):
        import json

        assert main(["--demo", "--spec", "shb+tc+detect+work", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        spec_payload = payload["specs"]["shb+tc+detect+work"]
        assert spec_payload["detection"]["race_count"] >= 1
        assert spec_payload["detection"]["races"][0]["variable"]
        assert spec_payload["work"]["entries_processed"] > 0

    def test_stream_mode_skips_stats_but_analyzes(self, tmp_path, capsys, racy_trace):
        path = tmp_path / "trace.std.gz"
        save_trace(racy_trace, path)
        assert main([str(path), "--stream", "--spec", "hb+tc+detect"]) == 0
        output = capsys.readouterr().out
        assert "streamed" in output and "lazy" in output
        assert "races: 1" in output
        assert "sync events" not in output  # no eager stats line

    def test_stream_requires_a_trace_file(self):
        with pytest.raises(SystemExit):
            main(["--stream"])

    def test_bad_spec_is_rejected(self):
        with pytest.raises(SystemExit, match="unknown spec token"):
            main(["--demo", "--spec", "hb+warp"])

"""Unit tests for the ``repro-analyze`` command-line interface."""

import pytest

from repro.cli import build_parser, demo_trace, main
from repro.trace import save_trace


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace.std"])
        assert args.order == "HB" and args.clock == "TC"
        assert args.format is None  # inferred from the file suffix at load time

    def test_demo_needs_no_trace_argument(self):
        args = build_parser().parse_args(["--demo"])
        assert args.demo and args.trace is None

    def test_rejects_unknown_order(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace.std", "--order", "WCP"])


class TestDemoTrace:
    def test_demo_trace_has_race(self):
        from repro import has_race

        assert has_race(demo_trace())


class TestMain:
    def test_requires_trace_or_demo(self):
        with pytest.raises(SystemExit):
            main([])

    def test_demo_run_with_races(self, capsys):
        assert main(["--demo", "--races"]) == 0
        output = capsys.readouterr().out
        assert "HB computed with TC" in output
        assert "races:" in output

    def test_demo_run_with_timestamps_and_limit(self, capsys):
        assert main(["--demo", "--timestamps", "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert output.count("[0]") == 1
        assert "[5]" not in output

    def test_demo_run_with_work_and_stats(self, capsys):
        assert main(["--demo", "--work", "--stats", "--clock", "VC", "--order", "SHB"]) == 0
        output = capsys.readouterr().out
        assert "SHB computed with VC" in output
        assert "entries processed" in output
        assert "Benchmark" in output

    def test_demo_show_clocks_renders_trees(self, capsys):
        assert main(["--demo", "--show-clocks"]) == 0
        output = capsys.readouterr().out
        assert "clock of thread t1" in output
        assert "clk=" in output

    def test_maz_detector_label(self, capsys):
        assert main(["--demo", "--order", "MAZ", "--races"]) == 0
        assert "reversible pairs:" in capsys.readouterr().out

    def test_analyze_trace_file(self, tmp_path, capsys, racy_trace):
        path = tmp_path / "trace.std"
        save_trace(racy_trace, path)
        assert main([str(path), "--races"]) == 0
        output = capsys.readouterr().out
        assert "races: 1" in output

    def test_analyze_csv_trace_file(self, tmp_path, capsys, race_free_trace):
        path = tmp_path / "trace.csv"
        save_trace(race_free_trace, path, fmt="csv")
        assert main([str(path), "--format", "csv", "--races"]) == 0
        assert "races: 0" in capsys.readouterr().out

    def test_format_inferred_from_suffix(self, tmp_path, capsys, racy_trace):
        path = tmp_path / "trace.csv.gz"
        save_trace(racy_trace, path, fmt="csv")
        assert main([str(path), "--races"]) == 0  # no --format needed
        assert "races: 1" in capsys.readouterr().out

    def test_ill_formed_trace_produces_warning(self, tmp_path, capsys):
        path = tmp_path / "bad.std"
        path.write_text("T1|rel(l)|0\n", encoding="utf-8")
        assert main([str(path)]) == 0
        assert "not well-formed" in capsys.readouterr().out

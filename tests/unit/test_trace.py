"""Unit tests for the trace container (:mod:`repro.trace.trace`)."""

import pytest

from repro.trace import Trace, TraceBuilder
from repro.trace import event as ev
from repro.trace.event import OpKind


@pytest.fixture
def simple_trace() -> Trace:
    return Trace(
        [
            ev.write(1, "x"),
            ev.acquire(1, "l"),
            ev.release(1, "l"),
            ev.acquire(2, "l"),
            ev.read(2, "x"),
            ev.release(2, "l"),
        ],
        name="simple",
    )


class TestBasics:
    def test_length(self, simple_trace):
        assert len(simple_trace) == 6

    def test_iteration_preserves_order(self, simple_trace):
        kinds = [event.kind for event in simple_trace]
        assert kinds == [
            OpKind.WRITE,
            OpKind.ACQUIRE,
            OpKind.RELEASE,
            OpKind.ACQUIRE,
            OpKind.READ,
            OpKind.RELEASE,
        ]

    def test_eids_are_positions(self, simple_trace):
        for position, event in enumerate(simple_trace):
            assert event.eid == position
            assert simple_trace[position] is event

    def test_name(self, simple_trace):
        assert simple_trace.name == "simple"

    def test_with_name_returns_renamed_copy(self, simple_trace):
        renamed = simple_trace.with_name("other")
        assert renamed.name == "other"
        assert renamed == simple_trace
        assert simple_trace.name == "simple"

    def test_equality_and_hash(self, simple_trace):
        clone = Trace(list(simple_trace.events))
        assert clone == simple_trace
        assert hash(clone) == hash(simple_trace)

    def test_inequality_with_other_types(self, simple_trace):
        assert simple_trace != "not a trace"

    def test_empty_trace(self):
        empty = Trace([])
        assert len(empty) == 0
        assert empty.threads == ()
        assert empty.num_threads == 0


class TestMetadata:
    def test_threads(self, simple_trace):
        assert list(simple_trace.threads) == [1, 2]
        assert simple_trace.num_threads == 2

    def test_locks(self, simple_trace):
        assert list(simple_trace.locks) == ["l"]

    def test_variables(self, simple_trace):
        assert list(simple_trace.variables) == ["x"]

    def test_count_kinds(self, simple_trace):
        counts = simple_trace.count_kinds()
        assert counts[OpKind.ACQUIRE] == 2
        assert counts[OpKind.RELEASE] == 2
        assert counts[OpKind.READ] == 1
        assert counts[OpKind.WRITE] == 1


class TestLocalTimes:
    def test_local_times_increment_per_thread(self, simple_trace):
        times = [simple_trace.local_time(event) for event in simple_trace]
        assert times == [1, 2, 3, 1, 2, 3]

    def test_local_times_sequence(self, simple_trace):
        assert list(simple_trace.local_times()) == [1, 2, 3, 1, 2, 3]

    def test_event_at(self, simple_trace):
        event = simple_trace.event_at(2, 2)
        assert event.kind is OpKind.READ
        assert event.tid == 2

    def test_event_at_missing_raises(self, simple_trace):
        with pytest.raises(KeyError):
            simple_trace.event_at(2, 10)

    def test_thread_ordered(self, simple_trace):
        first, second = simple_trace[0], simple_trace[1]
        assert simple_trace.thread_ordered(first, second)
        assert not simple_trace.thread_ordered(second, first)
        assert simple_trace.thread_ordered(first, first)

    def test_thread_ordered_cross_thread_is_false(self, simple_trace):
        assert not simple_trace.thread_ordered(simple_trace[0], simple_trace[3])

    def test_events_of_thread(self, simple_trace):
        events = simple_trace.events_of_thread(2)
        assert [event.eid for event in events] == [3, 4, 5]


class TestPerObjectViews:
    def test_accesses_of(self, simple_trace):
        accesses = simple_trace.accesses_of("x")
        assert [event.eid for event in accesses] == [0, 4]

    def test_accesses_of_unknown_variable(self, simple_trace):
        assert simple_trace.accesses_of("zzz") == []

    def test_critical_sections(self, simple_trace):
        sections = simple_trace.critical_sections("l")
        assert len(sections) == 2
        (acq1, rel1), (acq2, rel2) = sections
        assert (acq1.eid, rel1.eid) == (1, 2)
        assert (acq2.eid, rel2.eid) == (3, 5)

    def test_open_critical_section_has_none_release(self):
        trace = Trace([ev.acquire(1, "l"), ev.read(1, "x")])
        sections = trace.critical_sections("l")
        assert len(sections) == 1
        assert sections[0][1] is None

    def test_conflicting_pairs(self, simple_trace):
        pairs = list(simple_trace.conflicting_pairs())
        assert len(pairs) == 1
        first, second = pairs[0]
        assert first.is_write and second.is_read
        assert first.eid < second.eid

    def test_conflicting_pairs_exclude_same_thread(self):
        trace = Trace([ev.write(1, "x"), ev.write(1, "x")])
        assert list(trace.conflicting_pairs()) == []

    def test_conflicting_pairs_exclude_read_read(self):
        trace = Trace([ev.read(1, "x"), ev.read(2, "x")])
        assert list(trace.conflicting_pairs()) == []


class TestRenumbering:
    def test_events_with_wrong_eids_are_renumbered(self):
        trace = Trace([ev.read(1, "x", eid=99), ev.write(2, "x", eid=-5)])
        assert [event.eid for event in trace] == [0, 1]

    def test_events_with_correct_eids_are_kept(self):
        original = ev.read(1, "x", eid=0)
        trace = Trace([original])
        assert trace[0] is original

"""Unit tests for the timing fold: :func:`repro.obs.timing.timing_fields`
and the ``repro.metrics`` compatibility shim."""

import pytest

import repro.metrics
import repro.metrics.timing
import repro.obs.timing
from repro.obs.timing import timing_fields


class TestTimingFields:
    def test_standard_key_pair(self):
        fields = timing_fields(1_500_000_000)
        assert fields == {"elapsed_ns": 1_500_000_000, "elapsed_seconds": 1.5}

    def test_zero(self):
        assert timing_fields(0) == {"elapsed_ns": 0, "elapsed_seconds": 0.0}

    def test_coerces_to_int_ns(self):
        fields = timing_fields(1234.0)
        assert fields["elapsed_ns"] == 1234
        assert isinstance(fields["elapsed_ns"], int)
        assert fields["elapsed_seconds"] == pytest.approx(1234 / 1e9)


class TestMetricsShim:
    """``repro.metrics.timing`` must stay a faithful alias of the moved module."""

    SHARED = (
        "DEFAULT_REPETITIONS",
        "SpeedupSample",
        "TimingSample",
        "average_speedup",
        "compare_clocks",
        "compare_clocks_session",
        "geometric_mean",
        "time_analysis",
        "timing_fields",
    )

    def test_shim_re_exports_the_same_objects(self):
        for name in self.SHARED:
            assert getattr(repro.metrics.timing, name) is getattr(repro.obs.timing, name), name

    def test_package_namespace_also_re_exports(self):
        for name in self.SHARED:
            assert getattr(repro.metrics, name) is getattr(repro.obs.timing, name), name

    def test_result_serialization_uses_timing_fields(self):
        # AnalysisResult.as_dict is the main consumer of the standardized
        # key pair; a drift here would silently fork the vocabulary.
        from repro.api import Session, TraceSource
        from repro.trace import TraceBuilder

        builder = TraceBuilder(name="tiny")
        builder.write(1, "x").read(2, "x")
        result = Session(["hb+tc"]).run(TraceSource(builder.build()))
        payload = result["hb+tc"].as_dict()
        assert payload["elapsed_ns"] >= 0
        assert payload["elapsed_seconds"] == pytest.approx(payload["elapsed_ns"] / 1e9)

"""Unit tests of :mod:`repro.faults`: the seeded fault-injection harness.

Determinism is the load-bearing property: a chaos run that fails must
replay *identically* under the same seed, so every decision an injector
makes is pinned to its private ``random.Random(seed)``.
"""

import os
import subprocess
import sys
import time

from repro.faults import ChaosMonkey, FaultInjector, kill_process


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        def draw(seed):
            injector = FaultInjector(seed, rates={"kill": 0.5})
            return [
                (injector.should("kill"), round(injector.uniform(0, 1), 9))
                for _ in range(200)
            ]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)

    def test_unknown_and_zero_rate_kinds_never_fire(self):
        injector = FaultInjector(0, rates={"off": 0.0})
        assert not any(injector.should("off") for _ in range(100))
        assert not any(injector.should("never-configured") for _ in range(100))

    def test_rate_one_always_fires(self):
        injector = FaultInjector(3, rates={"sure": 1.0})
        assert all(injector.should("sure") for _ in range(100))

    def test_maybe_stall_is_bounded_and_seeded(self):
        injector = FaultInjector(1, rates={"stall": 1.0})
        stall = injector.maybe_stall(max_seconds=0.001)
        assert 0.0 <= stall <= 0.001
        assert FaultInjector(1, rates={}).maybe_stall(max_seconds=0.001) == 0.0

    def test_choice_is_seeded(self):
        options = list(range(50))
        picks_a = [FaultInjector(5).choice(options) for _ in range(3)]
        picks_b = [FaultInjector(5).choice(options) for _ in range(3)]
        assert picks_a == picks_b


class TestProcessFaults:
    def test_kill_process_kills_and_tolerates_gone_pids(self):
        victim = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            kill_process(victim.pid)
            assert victim.wait(timeout=10) != 0
        finally:
            if victim.poll() is None:
                victim.kill()
        kill_process(victim.pid)  # already reaped: must not raise

    def test_chaos_monkey_kills_from_the_victim_list(self):
        victims = [
            subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
            for _ in range(2)
        ]
        pids = [victim.pid for victim in victims]
        monkey = ChaosMonkey(lambda: list(pids), seed=1, interval=0.05, kill_rate=1.0)
        monkey.start()
        try:
            deadline = time.monotonic() + 10
            while not monkey.kills and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            monkey.stop()
            for victim in victims:
                if victim.poll() is None:
                    victim.kill()
                victim.wait(timeout=10)
        assert monkey.kills and set(monkey.kills) <= set(pids)

    def test_chaos_monkey_with_no_victims_is_harmless(self):
        monkey = ChaosMonkey(lambda: [], seed=0, interval=0.01, kill_rate=1.0)
        monkey.start()
        time.sleep(0.05)
        monkey.stop()
        assert monkey.kills == []
        assert os.getpid()  # we are, in fact, still alive

"""Unit tests for the clock renderers (:mod:`repro.clocks.render`)."""

from repro.analysis import HBAnalysis
from repro.clocks import (
    ClockContext,
    TreeClock,
    VectorClock,
    render_clock,
    render_tree_clock,
    render_vector_time,
)
from repro.trace import TraceBuilder


def make_context():
    return ClockContext(threads=[1, 2, 3, 4])


class TestRenderVectorTime:
    def test_empty_clock(self):
        assert render_vector_time(VectorClock(make_context())) == "[]"

    def test_nonzero_entries_sorted_by_thread(self):
        clock = VectorClock(make_context())
        clock.increment(3, 7)
        clock.increment(1, 2)
        assert render_vector_time(clock) == "[t1:2, t3:7]"

    def test_works_for_tree_clocks_too(self):
        clock = TreeClock(make_context(), owner=2)
        clock.increment(2, 5)
        assert render_vector_time(clock) == "[t2:5]"


class TestRenderTreeClock:
    def test_empty_tree_clock(self):
        assert render_tree_clock(TreeClock(make_context())) == "(empty tree clock)"

    def test_single_root(self):
        clock = TreeClock(make_context(), owner=1)
        clock.increment(1, 3)
        assert render_tree_clock(clock) == "(t1, clk=3, aclk=⊥)"

    def test_nested_rendering_shows_structure(self):
        context = make_context()
        a = TreeClock(context, owner=1)
        a.increment(1, 2)
        b = TreeClock(context, owner=2)
        b.increment(2, 1)
        c = TreeClock(context, owner=3)
        c.increment(3, 4)
        b.join(c)       # t2 learns t3
        a.join(b)       # t1 learns t2 (and t3 transitively)
        text = render_tree_clock(a)
        lines = text.splitlines()
        assert lines[0] == "(t1, clk=2, aclk=⊥)"
        assert any("t2" in line and "clk=1" in line for line in lines)
        # t3 is rendered one level deeper than t2 (learned transitively).
        t2_line = next(line for line in lines if "(t2," in line)
        t3_line = next(line for line in lines if "(t3," in line)
        assert len(t3_line) - len(t3_line.lstrip("| `-")) >= 0
        assert lines.index(t3_line) > lines.index(t2_line)

    def test_one_line_per_entry(self):
        analysis = HBAnalysis(TreeClock)
        trace = TraceBuilder().sync(1, "a").sync(2, "a").sync(3, "a").build()
        analysis.run(trace)
        clock = analysis.thread_clocks[3]
        assert len(render_tree_clock(clock).splitlines()) == clock.node_count


class TestRenderClockDispatch:
    def test_dispatches_on_type(self):
        context = make_context()
        assert render_clock(TreeClock(context, owner=1)).startswith("(t1")
        assert render_clock(VectorClock(context)) == "[]"

"""Unit tests for the serve line protocol framing and address parsing."""

import io

import pytest

from repro.serve.client import parse_address
from repro.serve.protocol import (
    DEFAULT_PORT,
    PROTOCOL,
    ProtocolError,
    encode_message,
    error_response,
    ok_response,
    read_message,
    write_message,
)


class TestFraming:
    def test_round_trip(self):
        stream = io.BytesIO()
        write_message(stream, {"op": "ping", "n": 1})
        stream.seek(0)
        assert read_message(stream) == {"op": "ping", "n": 1}

    def test_one_message_per_line(self):
        stream = io.BytesIO()
        write_message(stream, {"op": "a"})
        write_message(stream, {"op": "b"})
        stream.seek(0)
        assert read_message(stream)["op"] == "a"
        assert read_message(stream)["op"] == "b"
        assert read_message(stream) is None

    def test_newlines_in_payloads_stay_framed(self):
        # Whole-trace submission ships multi-line trace text in one message.
        text = "T1|w(x)|0\nT2|w(x)|1\n"
        stream = io.BytesIO()
        write_message(stream, {"op": "submit", "text": text})
        stream.seek(0)
        assert read_message(stream)["text"] == text

    def test_eof_returns_none(self):
        assert read_message(io.BytesIO(b"")) is None

    def test_blank_lines_are_skipped(self):
        stream = io.BytesIO(b"\n\n" + encode_message({"op": "ping"}))
        assert read_message(stream)["op"] == "ping"

    def test_invalid_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_message(io.BytesIO(b"{nope\n"))

    def test_non_object_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            read_message(io.BytesIO(b"[1, 2]\n"))

    def test_encode_is_compact_single_line(self):
        wire = encode_message({"op": "feed", "lines": ["T1|w(x)"]})
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1


class TestResponses:
    def test_ok_response(self):
        assert ok_response(digest="d")["ok"] is True
        assert ok_response(digest="d")["digest"] == "d"

    def test_error_response(self):
        response = error_response("boom", op="submit")
        assert response["ok"] is False and response["error"] == "boom"

    def test_protocol_version_constant(self):
        assert PROTOCOL == "repro-serve/1"


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_bare_host_defaults_the_port(self):
        assert parse_address("example.test") == ("example.test", DEFAULT_PORT)

    def test_bare_port_defaults_the_host(self):
        assert parse_address(":7000") == ("127.0.0.1", 7000)

    def test_invalid_port_raises(self):
        with pytest.raises(ValueError, match="port must be an integer"):
            parse_address("host:http")

"""Unit tests for the incremental ``begin()/feed()/finish()`` engine API."""

import pytest

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.clocks import TreeClock, VectorClock
from repro.trace import TraceBuilder

ALL_ANALYSES = [HBAnalysis, SHBAnalysis, MAZAnalysis]
ALL_CLOCKS = [TreeClock, VectorClock]


def mixed_trace():
    builder = TraceBuilder(name="mixed")
    builder.fork(1, 2).fork(1, 3)
    builder.write(1, "x")
    builder.acquire(1, "l").write(1, "y").release(1, "l")
    builder.acquire(2, "l").read(2, "y").release(2, "l")
    builder.write(2, "x")
    builder.read(3, "y").write(3, "z")
    builder.join(1, 2).join(1, 3)
    builder.read(1, "z")
    return builder.build()


@pytest.mark.parametrize("analysis_class", ALL_ANALYSES)
@pytest.mark.parametrize("clock_class", ALL_CLOCKS)
class TestFeedMatchesRun:
    def test_timestamps_and_detection_match(self, analysis_class, clock_class):
        trace = mixed_trace()
        whole = analysis_class(clock_class, capture_timestamps=True, detect=True).run(trace)

        incremental = analysis_class(clock_class, capture_timestamps=True, detect=True)
        incremental.begin(threads=trace.threads, trace_name=trace.name)
        for event in trace:
            incremental.feed(event)
        result = incremental.finish()

        assert result.timestamps == whole.timestamps
        assert result.detection.race_count == whole.detection.race_count
        assert [race.pair() for race in result.detection.races] == [
            race.pair() for race in whole.detection.races
        ]
        assert result.num_events == whole.num_events == len(trace)
        assert result.num_threads == whole.num_threads
        assert result.trace_name == trace.name

    def test_work_counters_match_with_preregistered_threads(self, analysis_class, clock_class):
        trace = mixed_trace()
        whole = analysis_class(clock_class, count_work=True).run(trace)

        incremental = analysis_class(clock_class, count_work=True)
        incremental.begin(threads=trace.threads)
        for event in trace:
            incremental.feed(event)
        result = incremental.finish()

        assert result.work.entries_processed == whole.work.entries_processed
        assert result.work.entries_updated == whole.work.entries_updated
        assert result.work.joins == whole.work.joins
        assert result.work.copies == whole.work.copies

    def test_dynamic_thread_universe_gives_same_analysis(self, analysis_class, clock_class):
        """Feeding with an empty initial universe must not change the outcome.

        This is the online-capture configuration: thread ids only become
        known as their events (or forks) stream in, and vector clocks must
        grow their dense arrays on the fly.
        """
        trace = mixed_trace()
        whole = analysis_class(clock_class, capture_timestamps=True, detect=True).run(trace)

        incremental = analysis_class(clock_class, capture_timestamps=True, detect=True)
        incremental.begin()  # no threads known upfront
        for event in trace:
            incremental.feed(event)
        result = incremental.finish()

        assert result.timestamps == whole.timestamps
        assert result.detection.race_count == whole.detection.race_count
        assert result.num_threads == whole.num_threads


class TestIncrementalProtocol:
    def test_feed_before_begin_raises(self):
        analysis = HBAnalysis(TreeClock)
        with pytest.raises(RuntimeError):
            analysis.feed(mixed_trace()[0])

    def test_finish_before_begin_raises(self):
        with pytest.raises(RuntimeError):
            HBAnalysis(TreeClock).finish()

    def test_run_is_reusable_after_incremental_use(self):
        trace = mixed_trace()
        analysis = HBAnalysis(TreeClock, detect=True)
        analysis.begin()
        analysis.feed(trace[0])
        # A later whole-trace run resets all incremental state.
        result = analysis.run(trace)
        assert result.num_events == len(trace)

    def test_on_race_streams_races_as_fed(self):
        trace = (
            TraceBuilder(name="racy")
            .write(1, "x")
            .sync(1, "l")
            .sync(2, "m")
            .write(2, "x")
            .build()
        )
        seen = []
        analysis = HBAnalysis(TreeClock, detect=True, on_race=seen.append)
        analysis.begin(threads=trace.threads)
        for event in trace:
            analysis.feed(event)
            if event.eid < len(trace) - 1:
                assert seen == []  # the race fires exactly at the second access
        result = analysis.finish()
        assert len(seen) == 1
        assert seen[0].variable == "x"
        assert result.detection.race_count == 1

    def test_on_race_fires_even_when_races_are_not_kept(self):
        trace = TraceBuilder().write(1, "x").sync(1, "l").sync(2, "m").write(2, "x").build()
        seen = []
        analysis = SHBAnalysis(VectorClock, detect=True, keep_races=False, on_race=seen.append)
        analysis.run(trace)
        assert len(seen) == 1

    def test_locate_attaches_location_to_races(self):
        trace = TraceBuilder().write(1, "x").sync(1, "l").sync(2, "m").write(2, "x").build()
        analysis = HBAnalysis(
            TreeClock, detect=True, locate=lambda event: f"prog.py:{event.eid}"
        )
        result = analysis.run(trace)
        (race,) = result.detection.races
        assert race.location == f"prog.py:{race.event_eid}"
        assert f"at prog.py:{race.event_eid}" in race.pair()

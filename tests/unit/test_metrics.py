"""Unit tests for the work and timing metrics (:mod:`repro.metrics`)."""

import pytest

from repro.analysis import HBAnalysis, MAZAnalysis, SHBAnalysis
from repro.metrics import (
    SpeedupSample,
    TimingSample,
    WorkMeasurement,
    average_speedup,
    compare_clocks,
    geometric_mean,
    is_vt_optimal,
    measure_work,
    time_analysis,
)
from repro.clocks import TreeClock, VectorClock
from util_traces import make_random_trace


@pytest.fixture(scope="module")
def medium_trace():
    return make_random_trace(seed=7, num_threads=10, num_locks=4, num_events=400)


class TestMeasureWork:
    def test_vt_work_is_bounded_by_events_and_nk(self, medium_trace):
        measurement = measure_work(medium_trace, HBAnalysis)
        assert measurement.num_events <= measurement.vt_work
        assert measurement.vt_work <= measurement.num_events * measurement.num_threads * 2

    def test_vc_work_is_at_least_tc_work_on_multithreaded_traces(self, medium_trace):
        measurement = measure_work(medium_trace, HBAnalysis)
        assert measurement.vc_work >= measurement.tc_work

    def test_tc_work_respects_theorem_bound(self, medium_trace):
        for analysis in (HBAnalysis, SHBAnalysis, MAZAnalysis):
            measurement = measure_work(medium_trace, analysis)
            assert is_vt_optimal(measurement), measurement.as_row()

    def test_ratios(self):
        measurement = WorkMeasurement(
            trace_name="t", partial_order="HB", num_events=10, num_threads=4,
            vt_work=100, vc_work=400, tc_work=200,
        )
        assert measurement.vc_over_vt == 4.0
        assert measurement.tc_over_vt == 2.0
        assert measurement.vc_over_tc == 2.0

    def test_ratios_with_zero_denominators(self):
        measurement = WorkMeasurement(
            trace_name="t", partial_order="HB", num_events=0, num_threads=0,
            vt_work=0, vc_work=0, tc_work=0,
        )
        assert measurement.vc_over_vt == 0.0
        assert measurement.tc_over_vt == 0.0
        assert measurement.vc_over_tc == 0.0

    def test_as_row_keys(self, medium_trace):
        row = measure_work(medium_trace, HBAnalysis).as_row()
        assert {"trace", "order", "VTWork", "VCWork", "TCWork"} <= set(row)

    def test_work_measurement_with_detection(self, medium_trace):
        measurement = measure_work(medium_trace, HBAnalysis, detect=True)
        assert measurement.vt_work > 0


class TestTiming:
    def test_time_analysis_reports_positive_seconds(self, medium_trace):
        sample = time_analysis(medium_trace, HBAnalysis, TreeClock, repetitions=1)
        assert sample.seconds > 0
        assert sample.clock_name == "TC"
        assert sample.partial_order == "HB"
        assert sample.events_per_second > 0

    def test_time_analysis_rejects_zero_repetitions(self, medium_trace):
        with pytest.raises(ValueError):
            time_analysis(medium_trace, HBAnalysis, TreeClock, repetitions=0)

    def test_compare_clocks_produces_speedup(self, medium_trace):
        sample = compare_clocks(medium_trace, HBAnalysis, repetitions=1)
        assert sample.vc_seconds > 0 and sample.tc_seconds > 0
        assert sample.speedup == pytest.approx(sample.vc_seconds / sample.tc_seconds)

    def test_speedup_sample_row(self):
        sample = SpeedupSample(
            trace_name="t", partial_order="HB", with_analysis=False,
            num_events=10, num_threads=2, vc_seconds=2.0, tc_seconds=1.0,
        )
        row = sample.as_row()
        assert row["speedup"] == 2.0
        assert row["VC (s)"] == 2.0

    def test_speedup_with_zero_tc_time_is_infinite(self):
        sample = SpeedupSample(
            trace_name="t", partial_order="HB", with_analysis=False,
            num_events=10, num_threads=2, vc_seconds=1.0, tc_seconds=0.0,
        )
        assert sample.speedup == float("inf")

    def test_average_speedup(self):
        samples = [
            SpeedupSample("a", "HB", False, 1, 1, vc_seconds=2.0, tc_seconds=1.0),
            SpeedupSample("b", "HB", False, 1, 1, vc_seconds=4.0, tc_seconds=1.0),
        ]
        assert average_speedup(samples) == pytest.approx(3.0)

    def test_average_speedup_of_empty_list(self):
        assert average_speedup([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_timing_sample_throughput_with_zero_seconds(self):
        sample = TimingSample(
            trace_name="t", partial_order="HB", clock_name="TC", with_analysis=False,
            num_events=5, num_threads=2, seconds=0.0, repetitions=1,
        )
        assert sample.events_per_second == float("inf")
